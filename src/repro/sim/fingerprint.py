"""Content-addressed caching for the timing simulator.

Configuration spaces routinely contain distinct configurations whose
*post-transform* kernels are identical where the simulator is
concerned: MRI-FHD's seven invocation splits share one per-launch
kernel body, and SAD's search-geometry parameters leave many code
shapes untouched.  The engine already memoizes per-configuration, but
that cannot see across configurations.

:func:`kernel_fingerprint` hashes everything the compile pipeline and
the trace builder actually consume — the structured body with
registers renamed canonically, the launch *block* geometry, the
declared arrays, the parameter signature, and the simulator cost
model — and deliberately excludes the kernel name and the grid
dimensions.  Grid size only enters the timing estimate through
``blocks_per_sm_total``, which :func:`repro.sim.gpu.simulate_kernel`
recomputes per call, so two kernels with equal fingerprints yield
byte-identical resources, traces, and (for equal block samples)
SM results.

:class:`SimulationCache` is the fingerprint-keyed store threaded
through :func:`repro.sim.gpu.simulate_kernel`; one instance per
application shares work across its whole configuration space.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.ir.instructions import Instruction, MemRef
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import (
    Immediate,
    Param,
    SpecialRegister,
    VirtualRegister,
)
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.cubin.resources import ResourceUsage
    from repro.metrics.model import MetricReport
    from repro.sim.sm import SMResult
    from repro.sim.trace import WarpTrace
    from repro.store.disk import ResultStore, StoreEntry


class _Canonicalizer:
    """Serializes a kernel into a stream of unambiguous tokens.

    Virtual registers are renamed by first occurrence, parameters and
    arrays are referred to by position, so two kernels that differ only
    in naming (or in grid size) produce the same stream.
    """

    def __init__(self, kernel: Kernel) -> None:
        self.tokens: List[str] = []
        self._regs: Dict[VirtualRegister, int] = {}
        self._params = {p: i for i, p in enumerate(kernel.params)}
        self._shared = {a: i for i, a in enumerate(kernel.shared_arrays)}
        self._local = {a: i for i, a in enumerate(kernel.local_arrays)}

    # -- operand encoding ------------------------------------------------

    def _reg(self, reg: VirtualRegister) -> str:
        slot = self._regs.get(reg)
        if slot is None:
            slot = self._regs[reg] = len(self._regs)
        return f"r{slot}"

    def _value(self, value) -> str:
        if isinstance(value, VirtualRegister):
            return self._reg(value)
        if isinstance(value, Immediate):
            return f"i:{value.value!r}:{value.dtype.value}"
        if isinstance(value, SpecialRegister):
            return f"s:{value.value}"
        if isinstance(value, Param):
            return f"p:{self._params[value]}"
        raise TypeError(f"unserializable operand {value!r}")

    def _base(self, base) -> str:
        index = self._params.get(base)
        if index is not None:
            return f"p:{index}"
        index = self._shared.get(base)
        if index is not None:
            return f"sh:{index}"
        return f"lo:{self._local[base]}"

    def _mem(self, mem: Optional[MemRef]) -> str:
        if mem is None:
            return ""
        return "@".join(
            (
                self._base(mem.base),
                self._value(mem.index),
                str(mem.offset),
                mem.space.value,
                mem.dtype.value,
            )
        )

    # -- statement encoding ----------------------------------------------

    def _instruction(self, instr: Instruction) -> None:
        self.tokens.append(
            "|".join(
                (
                    "I",
                    instr.opcode.value,
                    instr.cmp.value if instr.cmp is not None else "",
                    self._reg(instr.dest) if instr.dest is not None else "",
                    ",".join(self._value(s) for s in instr.srcs),
                    self._mem(instr.mem),
                    "c" if instr.coalesced else "u",
                )
            )
        )

    def body(self, statements: List[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, Instruction):
                self._instruction(stmt)
            elif isinstance(stmt, ForLoop):
                trips = "?" if stmt.trip_count is None else str(stmt.trip_count)
                self.tokens.append(
                    "|".join(
                        (
                            "F",
                            trips,
                            self._reg(stmt.counter),
                            self._value(stmt.start),
                            self._value(stmt.stop),
                            self._value(stmt.step),
                        )
                    )
                )
                self.body(stmt.body)
                self.tokens.append("EndF")
            elif isinstance(stmt, If):
                self.tokens.append(
                    f"C|{self._value(stmt.cond)}|{stmt.taken_fraction!r}"
                )
                self.body(stmt.then_body)
                self.tokens.append("Else")
                self.body(stmt.else_body)
                self.tokens.append("EndC")
            else:
                raise TypeError(f"unserializable statement {stmt!r}")


def kernel_fingerprint(
    kernel: Kernel, config: SimConfig = DEFAULT_SIM_CONFIG
) -> str:
    """Content hash of everything the simulation pipeline consumes.

    Two kernels with equal fingerprints are guaranteed identical
    resource usage, warp traces, and per-sample SM behaviour under
    ``config``.  The kernel *name* and the *grid* dimensions are
    deliberately excluded (see module docstring).
    """
    canon = _Canonicalizer(kernel)
    header = [
        f"blk|{kernel.block_dim.x}|{kernel.block_dim.y}|{kernel.block_dim.z}",
    ]
    header.extend(
        f"P|{p.dtype.value}|{int(p.is_pointer)}|{p.space.value}"
        for p in kernel.params
    )
    header.extend(
        f"S|{a.dtype.value}|{'x'.join(str(d) for d in a.shape)}"
        for a in kernel.shared_arrays
    )
    header.extend(
        f"L|{a.dtype.value}|{a.length}" for a in kernel.local_arrays
    )
    header.append(f"cfg|{config!r}")
    canon.tokens.extend(header)
    canon.body(kernel.body)
    digest = hashlib.sha256("\n".join(canon.tokens).encode("utf-8"))
    return digest.hexdigest()


class SimulationCache:
    """Fingerprint-keyed store for compile and simulation artifacts.

    One instance is shared across every configuration of an
    application (see :attr:`repro.apps.base.Application.sim_cache`):

    * ``resources`` — the static compile pass (register allocation,
      shared-memory accounting), keyed by fingerprint;
    * ``traces`` — loop-compressed warp traces, keyed by fingerprint;
    * ``sm`` — :class:`~repro.sim.sm.SMResult`, keyed by
      ``(fingerprint, blocks_sampled)`` because the sampled block
      count is the only grid-derived input of the SM replay.  The
      caller rescales cycles by its own ``blocks_per_sm_total``.

    Hit counters and replay telemetry (waves simulated, integer
    blocks replayed/extrapolated/resident, events replayed —
    accumulated on *misses* only, so they count real work) feed
    :class:`repro.tuning.engine.EngineStats`.  In a process
    pool each worker owns a private cache; :meth:`counters` snapshots
    and :meth:`delta_since` let the engine ship per-task deltas back
    to the parent (see :func:`repro.tuning.engine._pool_simulate`), so
    the aggregated telemetry stays exact under any worker count.

    A :class:`repro.store.ResultStore` can be layered underneath as a
    durable tier (:meth:`attach_store`): lookups read through to disk
    on an in-memory miss, and stores write back — immediately when
    this cache owns the store (``write_back=True``, the serial/parent
    mode), or into a backlog that pool workers drain and ship to the
    parent alongside their counter deltas (``write_back=False``, so
    one process owns all disk writes).  Artifacts read from or written
    to disk are byte-identical to recomputation, so results never
    depend on the store being present, cold, or warm.
    """

    #: ``(telemetry name, attribute, zero)`` — the single declaration
    #: both :meth:`counters` and :meth:`clear` derive from, so adding
    #: a tier cannot silently desync telemetry.
    COUNTER_SPEC = (
        ("fingerprint_resource_hits", "resource_hits", 0),
        ("fingerprint_trace_hits", "trace_hits", 0),
        ("fingerprint_sm_hits", "sm_hits", 0),
        ("compile_hits", "compile_hits", 0),
        ("compile_evaluations", "compile_evaluations", 0),
        ("waves_simulated", "waves_simulated", 0),
        ("blocks_replayed", "blocks_replayed", 0),
        ("blocks_extrapolated", "blocks_extrapolated", 0),
        ("blocks_resident", "blocks_resident", 0),
        ("events_replayed", "events_replayed", 0),
    )
    #: persistent-store counters, proxied from the attached
    #: :class:`~repro.store.ResultStore` under the same derivation
    #: rule; reported only while a store is attached.
    STORE_COUNTER_SPEC = (
        ("store_hits", "hits"),
        ("store_misses", "misses"),
        ("store_evictions", "evictions"),
        ("store_corrupt", "corrupt"),
        ("store_bulk_reads", "bulk_reads"),
        ("store_bytes_verified", "bytes_verified"),
    )

    def __init__(self, store: Optional["ResultStore"] = None) -> None:
        self._resources: Dict[str, "ResourceUsage"] = {}
        self._traces: Dict[str, "WarpTrace"] = {}
        self._sm: Dict[Tuple[str, int], "SMResult"] = {}
        #: full static-stage results (the compile tier): ptx accounting,
        #: ResourceUsage, and the assembled MetricReport, keyed by
        #: fingerprint.  Every field except ``efficiency``/``threads``
        #: is grid-independent; the consumer re-specializes those two
        #: from its own kernel (see Application.evaluate).
        self._compile: Dict[str, "MetricReport"] = {}
        for _name, attr, zero in self.COUNTER_SPEC:
            setattr(self, attr, zero)
        self._store: Optional["ResultStore"] = None
        self._store_write_back = True
        self._store_backlog: List["StoreEntry"] = []
        self._store_seen: set = set()
        #: optional daemon-wide :class:`repro.store.DecodedCache`
        #: probed before the store on read-through, so repeated reads
        #: of one fingerprint never re-hash or re-unpickle — shared
        #: across every runtime of a service process.
        self._decoded = None
        if store is not None:
            self.attach_store(store)

    # -- persistent tier -------------------------------------------------

    @property
    def store(self) -> Optional["ResultStore"]:
        return self._store

    def attach_store(
        self, store: "ResultStore", write_back: bool = True
    ) -> None:
        """Layer a durable store under this cache.

        ``write_back=True`` persists artifacts to disk as they are
        produced (the serial and pool-parent mode); ``write_back=False``
        collects them in a backlog instead (pool workers — see
        :meth:`drain_store_backlog`), leaving all disk writes to one
        owning process.
        """
        self._store = store
        self._store_write_back = write_back
        self._store_backlog = []
        self._store_seen = set()

    def set_store_write_back(self, write_back: bool) -> None:
        self._store_write_back = bool(write_back)

    def set_decoded_cache(self, cache) -> None:
        """Share a :class:`repro.store.DecodedCache` with this cache.

        Probed before the store on every read-through and populated on
        every store hit or write, so sibling runtimes reading the same
        fingerprints skip the open/sha256/unpickle entirely.
        """
        self._decoded = cache

    def _store_load(self, tier: str, key) -> Optional[Any]:
        if self._store is None:
            return None
        if self._decoded is not None:
            found = self._decoded.get(tier, key)
            if found is not None:
                self._store_seen.add((tier, key))
                return found
        found = self._store.load(tier, key)
        if found is not None:
            # Loaded entries never need re-persisting from this process.
            self._store_seen.add((tier, key))
            if self._decoded is not None:
                self._decoded.put(tier, key, found)
        return found

    def _store_put(self, tier: str, key, obj: Any) -> None:
        """Persist (or backlog) one freshly produced artifact, once."""
        if self._store is None:
            return
        if self._decoded is not None:
            self._decoded.put(tier, key, obj)
        marker = (tier, key)
        if marker in self._store_seen:
            return
        self._store_seen.add(marker)
        if self._store_write_back:
            self._store.store(tier, key, obj)
        else:
            self._store_backlog.append((tier, key, obj))

    def drain_store_backlog(self) -> List["StoreEntry"]:
        """Artifacts produced since the last drain (worker mode only);
        the scheduler ships them to the parent with each result."""
        backlog, self._store_backlog = self._store_backlog, []
        return backlog

    def absorb_store_entries(self, entries: List["StoreEntry"]) -> None:
        """Fold worker-computed artifacts into this (parent) cache.

        Entries land in the in-memory tiers without touching the hit
        or work counters — the worker's counter delta already counted
        the real work — and are written back to the attached store
        (the parent owns write-back regardless of its own mode).
        """
        tiers = {
            "resources": self._resources,
            "trace": self._traces,
            "sm": self._sm,
            "compile": self._compile,
        }
        for tier, key, obj in entries:
            if tier == "sm":
                key = tuple(key)
            tiers[tier].setdefault(key, obj)
            if self._store is not None and (tier, key) not in self._store_seen:
                self._store_seen.add((tier, key))
                self._store.store(tier, key, obj)

    def flush_to_store(self, store: Optional["ResultStore"] = None) -> int:
        """Persist every in-memory artifact; returns the entry count.

        Lets a benchmark (or a sweep that attached its store late)
        populate a store from an already-warm cache without re-running
        anything.
        """
        target = store if store is not None else self._store
        if target is None:
            raise ValueError("no result store attached and none given")
        written = 0
        for fingerprint, obj in self._resources.items():
            target.store("resources", fingerprint, obj)
            written += 1
        for fingerprint, obj in self._traces.items():
            target.store("trace", fingerprint, obj)
            written += 1
        for key, obj in self._sm.items():
            target.store("sm", key, obj)
            written += 1
        for fingerprint, obj in self._compile.items():
            target.store("compile", fingerprint, obj)
            written += 1
        return written

    def preload_from_store(self) -> int:
        """Bulk-rehydrate the in-memory tiers from the attached store.

        One :meth:`~repro.store.ResultStore.list_keys` +
        :meth:`~repro.store.ResultStore.load_many` pass per tier, so a
        warm process pays the per-entry open/verify/unpickle cost up
        front (amortized, one timestamp per tier) instead of inside
        its sweep.  Entries land exactly like read-through hits: into
        the memory tiers without touching the work counters, marked
        seen so they are never re-persisted, and mirrored into the
        decoded cache when one is attached.  Returns the number of
        entries loaded.
        """
        if self._store is None:
            raise ValueError("no result store attached")
        tiers = (
            ("resources", self._resources),
            ("trace", self._traces),
            ("sm", self._sm),
            ("compile", self._compile),
        )
        loaded = 0
        for tier, memory in tiers:
            found = self._store.load_many(tier, self._store.list_keys(tier))
            for key, obj in found.items():
                memory.setdefault(key, obj)
                self._store_seen.add((tier, key))
                if self._decoded is not None:
                    self._decoded.put(tier, key, obj)
                loaded += 1
        return loaded

    # -- resources -------------------------------------------------------

    def lookup_resources(self, fingerprint: str) -> Optional["ResourceUsage"]:
        found = self._resources.get(fingerprint)
        if found is not None:
            self.resource_hits += 1
            return found
        found = self._store_load("resources", fingerprint)
        if found is not None:
            self._resources[fingerprint] = found
        return found

    def store_resources(
        self, fingerprint: str, resources: "ResourceUsage"
    ) -> None:
        self._resources[fingerprint] = resources
        self._store_put("resources", fingerprint, resources)

    # -- compile tier (full static-stage results) ------------------------

    def lookup_compile(self, fingerprint: str) -> Optional["MetricReport"]:
        """Counting lookup: a hit means a full static evaluation saved."""
        found = self._compile.get(fingerprint)
        if found is not None:
            self.compile_hits += 1
            return found
        found = self._store_load("compile", fingerprint)
        if found is not None:
            self._compile[fingerprint] = found
        return found

    def peek_compile(self, fingerprint: str) -> Optional["MetricReport"]:
        """Non-counting lookup for opportunistic consumers (e.g. the
        simulator threading in already-compiled resources)."""
        found = self._compile.get(fingerprint)
        if found is not None:
            return found
        found = self._store_load("compile", fingerprint)
        if found is not None:
            self._compile[fingerprint] = found
        return found

    def store_compile(self, fingerprint: str, report: "MetricReport") -> None:
        """Record a freshly evaluated configuration; counts the real
        compile work (``compile_evaluations``) and seeds the resource
        tier so a later simulation skips register allocation too."""
        self._compile[fingerprint] = report
        self.compile_evaluations += 1
        self._resources.setdefault(fingerprint, report.resources)
        self._store_put("compile", fingerprint, report)

    # -- traces ----------------------------------------------------------

    def lookup_trace(self, fingerprint: str) -> Optional["WarpTrace"]:
        found = self._traces.get(fingerprint)
        if found is not None:
            self.trace_hits += 1
            return found
        found = self._store_load("trace", fingerprint)
        if found is not None:
            self._traces[fingerprint] = found
        return found

    def store_trace(self, fingerprint: str, trace: "WarpTrace") -> None:
        self._traces[fingerprint] = trace
        self._store_put("trace", fingerprint, trace)

    # -- SM results ------------------------------------------------------

    def lookup_sm(
        self, fingerprint: str, blocks_sampled: int
    ) -> Optional["SMResult"]:
        key = (fingerprint, blocks_sampled)
        found = self._sm.get(key)
        if found is not None:
            self.sm_hits += 1
            return found
        found = self._store_load("sm", key)
        if found is not None:
            # Direct insertion: waves/events count real replay work
            # only, and this result's work was counted when it was
            # first computed (possibly by another process entirely).
            self._sm[key] = found
        return found

    def store_sm(
        self, fingerprint: str, blocks_sampled: int, result: "SMResult"
    ) -> None:
        self._sm[(fingerprint, blocks_sampled)] = result
        # Integer block counts (not the per-SM wave *fraction*, which
        # would merge meaninglessly across configurations and pool
        # workers): report tables derive any ratio at display time.
        self.waves_simulated += result.waves_simulated
        self.blocks_replayed += result.blocks_replayed
        self.blocks_extrapolated += result.blocks_extrapolated
        self.blocks_resident += result.blocks_resident
        self.events_replayed += result.events_replayed
        self._store_put("sm", (fingerprint, blocks_sampled), result)

    # -- bookkeeping -----------------------------------------------------

    @property
    def hits(self) -> int:
        return self.resource_hits + self.trace_hits + self.sm_hits

    def counters(self) -> Dict[str, float]:
        """Telemetry snapshot (the EngineStats / report payload).

        Derived from :data:`COUNTER_SPEC` (plus the proxied
        :data:`STORE_COUNTER_SPEC` when a store is attached), so every
        counter the cache maintains is reported — by construction.
        """
        snapshot = {
            name: getattr(self, attr) for name, attr, _zero in self.COUNTER_SPEC
        }
        if self._store is not None:
            for name, attr in self.STORE_COUNTER_SPEC:
                snapshot[name] = getattr(self._store, attr)
        return snapshot

    def delta_since(self, before: Dict[str, float]) -> Dict[str, float]:
        """Counter changes since a previous :meth:`counters` snapshot.

        The per-task payload a pool worker returns to the parent
        engine; only changed names are included.
        """
        from repro.obs.metrics import counter_delta

        return counter_delta(self.counters(), before)

    def clear(self) -> None:
        """Drop in-memory contents and reset this cache's counters.

        The attached store (contents *and* counters) is untouched —
        durability across clears and restarts is its whole purpose.
        """
        self._resources.clear()
        self._traces.clear()
        self._sm.clear()
        self._compile.clear()
        for _name, attr, zero in self.COUNTER_SPEC:
            setattr(self, attr, zero)
        self._store_backlog = []
        self._store_seen = set()


__all__ = ["SimulationCache", "kernel_fingerprint"]
