"""Warp-level execution traces.

The timing simulator does not interpret instructions; it replays a
*trace* — the per-warp sequence of issue-port work, memory requests,
scoreboard waits and barriers that one warp of the kernel produces.
Because kernels are SPMD and divergence is modeled statically, every
warp replays the same trace; only the timing state differs.

Load/use separation matters: "global load operations execute
immediately and do not block execution until a use of the destination
operand is encountered" (Section 4).  The trace records the load at
its issue point and a USE event at the first read of its destination,
which is precisely what makes prefetching profitable in the simulator.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.ir.instructions import Instruction
from repro.ir.kernel import Kernel
from repro.ir.values import VirtualRegister
from repro.ptx.analysis import ControlOp, expand_dynamic
from repro.ptx.isa import InstrClass, classify
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig

# Event kinds (tuple-encoded for speed: (kind, a, b)).
COMPUTE = 0   # a = issue slots (ALU instructions)
SFU = 1       # a = tag; result is scoreboarded like a load
LOAD = 2      # a = tag, b = (DRAM bytes for the warp, latency)
USE = 3       # a = tag
STORE = 4     # a = DRAM bytes for the warp
BARRIER = 5

Event = Tuple


@dataclasses.dataclass(frozen=True)
class WarpTrace:
    """The replayable event stream of one warp."""

    events: List[Event]
    issue_slots: int          # total port-consuming instructions
    dram_bytes: float         # per-warp DRAM traffic (loads + stores)

    def __len__(self) -> int:
        return len(self.events)


def _warp_bytes(instr: Instruction, threads: int, config: SimConfig) -> float:
    bytes_per_thread = instr.mem.dtype.size_bytes
    total = bytes_per_thread * threads
    if not instr.coalesced:
        total *= config.uncoalesced_traffic_factor
    return total


def build_trace(kernel: Kernel, config: SimConfig = DEFAULT_SIM_CONFIG) -> WarpTrace:
    """Compile a kernel into its warp trace.

    The final (possibly partial) warp is modeled like a full one: the
    SIMD pipeline charges a full warp's issue slots regardless of how
    many lanes are active.
    """
    threads = min(kernel.threads_per_block, config.device.warp_size)
    events: List[Event] = []
    pending: dict = {}          # dest register -> tag
    compute_run = 0
    issue_slots = 0
    dram_bytes = 0.0
    next_tag = 0

    def flush_compute() -> None:
        nonlocal compute_run
        if compute_run:
            events.append((COMPUTE, compute_run, 0))
            compute_run = 0

    def note_uses(instr: Instruction) -> None:
        for value in instr.reads:
            if isinstance(value, VirtualRegister) and value in pending:
                flush_compute()
                events.append((USE, pending.pop(value), 0))

    for op in expand_dynamic(kernel):
        if isinstance(op, ControlOp):
            compute_run += 1
            issue_slots += 1
            continue
        cls = classify(op)
        note_uses(op)
        issue_slots += 1
        if cls in (InstrClass.GLOBAL_LOAD, InstrClass.LOCAL_LOAD,
                   InstrClass.TEXTURE_LOAD):
            flush_compute()
            if cls is InstrClass.TEXTURE_LOAD:
                bytes_ = 0.0
                latency = config.texture_latency_cycles
            else:
                bytes_ = _warp_bytes(op, threads, config)
                latency = config.global_latency_cycles
                dram_bytes += bytes_
            tag = next_tag
            next_tag += 1
            if op.dest is not None:
                pending[op.dest] = tag
            events.append((LOAD, tag, (bytes_, latency)))
        elif cls in (InstrClass.GLOBAL_STORE, InstrClass.LOCAL_STORE):
            flush_compute()
            bytes_ = _warp_bytes(op, threads, config)
            dram_bytes += bytes_
            events.append((STORE, bytes_, 0))
        elif cls is InstrClass.BARRIER:
            flush_compute()
            events.append((BARRIER, 0, 0))
        elif cls is InstrClass.SFU:
            flush_compute()
            tag = next_tag
            next_tag += 1
            if op.dest is not None:
                pending[op.dest] = tag
            events.append((SFU, tag, 0))
        elif cls is InstrClass.CONST_LOAD:
            # Constant-cache hits cost like ALU ops unless conflicted.
            compute_run += config.constant_conflict_ways
        elif cls in (InstrClass.SHARED_LOAD, InstrClass.SHARED_STORE):
            # Bank-conflict-free by default (Table 1); serialized
            # accesses replay the instruction per conflicting bank.
            compute_run += config.shared_bank_conflict_ways
        else:
            # Remaining ALU work: one issue slot.
            compute_run += 1
    flush_compute()
    return WarpTrace(events=events, issue_slots=issue_slots, dram_bytes=dram_bytes)
