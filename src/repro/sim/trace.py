"""Warp-level execution traces, loop-compressed.

The timing simulator does not interpret instructions; it replays a
*trace* — the per-warp sequence of issue-port work, memory requests,
scoreboard waits and barriers that one warp of the kernel produces.
Because kernels are SPMD and divergence is modeled statically, every
warp replays the same trace; only the timing state differs.

Load/use separation matters: "global load operations execute
immediately and do not block execution until a use of the destination
operand is encountered" (Section 4).  The trace records the load at
its issue point and a USE event at the first read of its destination,
which is precisely what makes prefetching profitable in the simulator.

Compression
-----------

A trace is stored as a small set of *segments* (tuples of events) plus
a *program* of ``(segment_index, repeat)`` records.  Loops do not
materialize ``trip_count`` copies of their body: the builder walks the
statement tree once, emits the first iteration literally (its
scoreboard state differs — prefetched loads from the preamble resolve
here), then captures the second and third iterations and proves they
are identical.  Steady-state iterations collapse into one record, so
trace size is O(static instructions) instead of O(dynamic
instructions) while decompressing to the *byte-identical* event stream
the uncompressed builder produced.

The scoreboard tags in LOAD/SFU/USE events are *slots* — stable ids
per destination register — rather than one-shot serial tags, so a
repeated segment replays correctly: a later load to the same register
simply overwrites the slot's completion time, exactly matching the
old tag semantics where a USE always referenced the latest tag.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.ir.instructions import Instruction
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import VirtualRegister
from repro.ptx.analysis import LOOP_OVERHEAD_PER_TRIP, LOOP_OVERHEAD_SETUP
from repro.ptx.isa import InstrClass, classify
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig

# Event kinds (tuple-encoded for speed: (kind, a, b)).  Port-consuming
# kinds are numbered below the settle-only kinds so the replay loop
# splits on a single compare (kind < 4 issues; kind >= 4 settles).
COMPUTE = 0   # a = issue slots (ALU instructions)
LOAD = 1      # a = scoreboard slot, b = (DRAM bytes for the warp, latency)
STORE = 2     # a = 0, b = DRAM bytes for the warp
SFU = 3       # a = scoreboard slot; result is scoreboarded like a load
USE = 4       # a = scoreboard slot
BARRIER = 5

Event = Tuple

#: Upper bound on materializing a repeated loop body into one flat
#: segment.  Bodies below the cap (the common case — even a fully
#: unrolled matmul tile is a few hundred events) become a single
#: segment replayed by index; larger bodies fall back to repeating
#: their record sequence, which still shares the underlying segments.
MAX_MATERIALIZED_SEGMENT = 65_536


@dataclasses.dataclass(frozen=True)
class WarpTrace:
    """The replayable event stream of one warp, loop-compressed.

    ``segments`` holds each distinct run of events exactly once;
    ``program`` replays them in order as ``(segment_index, repeat)``
    records.  ``len(trace)`` is the dynamic event count; ``events``
    materializes the flat stream (tests, the reference replayer).
    """

    segments: Tuple[Tuple[Event, ...], ...]
    program: Tuple[Tuple[int, int], ...]
    issue_slots: int          # total port-consuming instructions
    dram_bytes: float         # per-warp DRAM traffic (loads + stores)

    @classmethod
    def from_events(
        cls,
        events: List[Event],
        issue_slots: int = 0,
        dram_bytes: float = 0.0,
    ) -> "WarpTrace":
        """Wrap a flat event list as a single-segment trace."""
        events = tuple(events)
        if not events:
            return cls(segments=(), program=(), issue_slots=issue_slots,
                       dram_bytes=dram_bytes)
        return cls(segments=(events,), program=((0, 1),),
                   issue_slots=issue_slots, dram_bytes=dram_bytes)

    @property
    def events(self) -> List[Event]:
        """The decompressed event stream (O(dynamic) — not the hot path)."""
        out: List[Event] = []
        for index, repeat in self.program:
            out.extend(self.segments[index] * repeat)
        return out

    def __len__(self) -> int:
        return sum(len(self.segments[i]) * r for i, r in self.program)


def _warp_bytes(instr: Instruction, threads: int, config: SimConfig) -> float:
    bytes_per_thread = instr.mem.dtype.size_bytes
    total = bytes_per_thread * threads
    if not instr.coalesced:
        total *= config.uncoalesced_traffic_factor
    return total


@dataclasses.dataclass
class _IterationDelta:
    """Accounting advance of one captured loop iteration."""

    records: List[Tuple[int, int]]
    issue_slots: int
    dram_bytes: float
    compute_run: int          # compute_run *after* the iteration


class _TraceBuilder:
    """Single-pass statement-tree walk producing a compressed trace.

    Mirrors the event-emission rules of the original flat builder
    exactly (instruction classes, scoreboard USE points, loop-control
    overhead of ``LOOP_OVERHEAD_SETUP``/``LOOP_OVERHEAD_PER_TRIP``
    synthetic ops); the only difference is that steady-state loop
    iterations are stored once and replayed by repeat count.
    """

    def __init__(self, kernel: Kernel, config: SimConfig) -> None:
        self.config = config
        self.threads = min(kernel.threads_per_block, config.device.warp_size)
        self.segments: List[Tuple[Event, ...]] = []
        self._segment_ids: Dict[Tuple[Event, ...], int] = {}
        #: stack of record streams; captures push a scratch stream
        self._records: List[List[Tuple[int, int]]] = [[]]
        self._events: List[Event] = []      # open (unsealed) event run
        self.pending: Dict[VirtualRegister, int] = {}   # reg -> slot
        self._slots: Dict[VirtualRegister, int] = {}
        self.compute_run = 0
        self.issue_slots = 0
        self.dram_bytes = 0.0

    # ------------------------------------------------------------------
    # Event plumbing.

    def _emit(self, event: Event) -> None:
        self._events.append(event)

    def _flush_compute(self) -> None:
        if self.compute_run:
            self._events.append((COMPUTE, self.compute_run, 0))
            self.compute_run = 0

    def _seal(self) -> None:
        """Close the open event run into a program record.

        Does *not* flush ``compute_run``: a pending compute run merges
        across loop boundaries into whichever segment finally flushes
        it, exactly as the flat builder batched it.
        """
        if not self._events:
            return
        self._records[-1].append((self._intern(tuple(self._events)), 1))
        self._events = []

    def _intern(self, events: Tuple[Event, ...]) -> int:
        index = self._segment_ids.get(events)
        if index is None:
            index = len(self.segments)
            self.segments.append(events)
            self._segment_ids[events] = index
        return index

    def _slot(self, reg: VirtualRegister) -> int:
        slot = self._slots.get(reg)
        if slot is None:
            slot = self._slots[reg] = len(self._slots)
        return slot

    def _control(self, count: int) -> None:
        """Synthetic loop/branch overhead ops (PTX add/setp/bra)."""
        self.compute_run += count
        self.issue_slots += count

    # ------------------------------------------------------------------
    # Statement dispatch (same rules as the flat builder).

    def _note_uses(self, instr: Instruction) -> None:
        for value in instr.reads:
            if isinstance(value, VirtualRegister) and value in self.pending:
                self._flush_compute()
                self._emit((USE, self.pending.pop(value), 0))

    def _instruction(self, op: Instruction) -> None:
        config = self.config
        cls = classify(op)
        self._note_uses(op)
        self.issue_slots += 1
        if cls in (InstrClass.GLOBAL_LOAD, InstrClass.LOCAL_LOAD,
                   InstrClass.TEXTURE_LOAD):
            self._flush_compute()
            if cls is InstrClass.TEXTURE_LOAD:
                bytes_ = 0.0
                latency = config.texture_latency_cycles
            else:
                bytes_ = _warp_bytes(op, self.threads, config)
                latency = config.global_latency_cycles
                self.dram_bytes += bytes_
            slot = self._slot(op.dest)
            if op.dest is not None:
                self.pending[op.dest] = slot
            self._emit((LOAD, slot, (bytes_, latency)))
        elif cls in (InstrClass.GLOBAL_STORE, InstrClass.LOCAL_STORE):
            self._flush_compute()
            bytes_ = _warp_bytes(op, self.threads, config)
            self.dram_bytes += bytes_
            self._emit((STORE, 0, bytes_))
        elif cls is InstrClass.BARRIER:
            self._flush_compute()
            self._emit((BARRIER, 0, 0))
        elif cls is InstrClass.SFU:
            self._flush_compute()
            slot = self._slot(op.dest)
            if op.dest is not None:
                self.pending[op.dest] = slot
            self._emit((SFU, slot, 0))
        elif cls is InstrClass.CONST_LOAD:
            # Constant-cache hits cost like ALU ops unless conflicted.
            self.compute_run += config.constant_conflict_ways
        elif cls in (InstrClass.SHARED_LOAD, InstrClass.SHARED_STORE):
            # Bank-conflict-free by default (Table 1); serialized
            # accesses replay the instruction per conflicting bank.
            self.compute_run += config.shared_bank_conflict_ways
        else:
            # Remaining ALU work: one issue slot.
            self.compute_run += 1

    def _body(self, body: List[Statement]) -> None:
        for stmt in body:
            if isinstance(stmt, Instruction):
                self._instruction(stmt)
            elif isinstance(stmt, ForLoop):
                self._loop(stmt)
            elif isinstance(stmt, If):
                self._control(1)          # guarding branch
                if stmt.taken_fraction >= 1.0:
                    self._body(stmt.then_body)
                elif stmt.taken_fraction <= 0.0:
                    self._body(stmt.else_body)
                else:
                    # Divergent warps serialize both sides.
                    self._body(stmt.then_body)
                    self._body(stmt.else_body)

    def _iteration(self, loop: ForLoop) -> None:
        self._body(loop.body)
        self._control(LOOP_OVERHEAD_PER_TRIP)   # add + setp + bra

    # ------------------------------------------------------------------
    # Loop compression.

    def _capture_iteration(self, loop: ForLoop) -> _IterationDelta:
        """Run one iteration with its records diverted to a scratch
        stream, returning the emitted records and accounting deltas."""
        self._seal()
        self._records.append([])
        issue_before = self.issue_slots
        dram_before = self.dram_bytes
        self._iteration(loop)
        self._seal()
        records = self._records.pop()
        return _IterationDelta(
            records=records,
            issue_slots=self.issue_slots - issue_before,
            dram_bytes=self.dram_bytes - dram_before,
            compute_run=self.compute_run,
        )

    def _append_records(self, records: List[Tuple[int, int]]) -> None:
        self._records[-1].extend(records)

    def _repeat_records(self, records: List[Tuple[int, int]], count: int) -> None:
        """Append ``count`` replays of a record sequence, as one
        materialized segment when small enough."""
        if not records or count <= 0:
            return
        if len(records) == 1:
            index, repeat = records[0]
            self._records[-1].append((index, repeat * count))
            return
        size = sum(len(self.segments[i]) * r for i, r in records)
        if size <= MAX_MATERIALIZED_SEGMENT:
            flat: List[Event] = []
            for index, repeat in records:
                flat.extend(self.segments[index] * repeat)
            self._records[-1].append((self._intern(tuple(flat)), count))
        else:
            for _ in range(count):
                self._records[-1].extend(records)

    def _loop(self, loop: ForLoop) -> None:
        trips = loop.annotated_trips
        self._control(LOOP_OVERHEAD_SETUP)       # init mov
        if trips == 0:
            return
        # First iteration inline: its scoreboard interactions (preamble
        # loads resolving, first-touch USE points) are unique.
        self._iteration(loop)
        if trips == 1:
            return
        # Second iteration: the candidate steady state.
        second = self._capture_iteration(loop)
        pending_after_second = dict(self.pending)
        self._append_records(second.records)
        if trips == 2:
            return
        # Third iteration proves the steady state: the scoreboard
        # reaches its fixed point after one body execution, so if the
        # third iteration replays the second exactly, so do all later
        # ones (the state transition is deterministic and idempotent).
        third = self._capture_iteration(loop)
        if (third.records == second.records
                and self.pending == pending_after_second):
            self._repeat_records(third.records, trips - 2)
            remaining = trips - 3
            self.issue_slots += remaining * third.issue_slots
            self.dram_bytes += remaining * third.dram_bytes
            self.compute_run += remaining * (third.compute_run - second.compute_run)
        else:
            # No steady state (never observed in practice — kept as an
            # exactness safety net): expand the remaining trips.
            self._append_records(third.records)
            for _ in range(trips - 3):
                self._iteration(loop)

    # ------------------------------------------------------------------

    def finish(self) -> WarpTrace:
        self._flush_compute()
        self._seal()
        assert len(self._records) == 1, "unbalanced capture stack"
        return WarpTrace(
            segments=tuple(self.segments),
            program=tuple(self._records[0]),
            issue_slots=self.issue_slots,
            dram_bytes=self.dram_bytes,
        )


def build_trace(kernel: Kernel, config: SimConfig = DEFAULT_SIM_CONFIG) -> WarpTrace:
    """Compile a kernel into its (loop-compressed) warp trace.

    The final (possibly partial) warp is modeled like a full one: the
    SIMD pipeline charges a full warp's issue slots regardless of how
    many lanes are active.  Build time and trace memory are O(static
    instructions): steady-state loop iterations are stored once and
    replayed by repeat count (see :class:`WarpTrace`).
    """
    builder = _TraceBuilder(kernel, config)
    builder._body(kernel.body)
    return builder.finish()
