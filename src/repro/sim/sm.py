"""Discrete-event timing model of one streaming multiprocessor.

Models the mechanisms Section 2.1 names as the performance
determinants: a single in-order issue port shared by all resident
warps (one warp instruction per four cycles), zero-overhead warp
switching (any ready warp may issue; the SM stalls only when no warp
has ready operands), scoreboarded global loads that block at first
use, block-wide barriers, SFU throughput, and queueing on the DRAM
interface.

The replay loop is the hot path of every configuration sweep, so it is
written for speed without changing the model (the straightforward
heap-loop form lives in ``repro.sim.reference``, and a differential
test pins the equivalence):

* traces are *compiled* before replay (:func:`compile_trace`): the
  loop-compressed program is linearized into one flat event list whose
  entries carry every per-event constant precomputed — a COMPUTE run's
  port duration, a memory event's burst-rate and sustained-rate
  service times (the two divisions of the DRAM token bucket), the
  scoreboard slot and latency of a load.  Precomputing ``a*b`` or
  ``a/b`` and adding the result later performs the identical IEEE-754
  operations in the identical order, so compiled replay is
  bit-identical to walking the raw segments;
* a warp's replay position is a single integer riding inside its
  scheduler entry, so the steady state runs on small-tuple unpacking
  with no segment/repeat bookkeeping at all;
* the scheduler is a FIFO plus a small heap: a warp re-queued after
  issuing carries a key no smaller than any earlier one (the port-free
  time never decreases), so those entries form a monotone queue, and
  only barrier releases and block refills need true heap inserts.
  Popping the smaller head of the two gives exactly the global
  ``(ready_at, arrival)`` order of the single-heap loop — ties between
  warps ready at the same cycle always go to the warp queued first;
* the DRAM token bucket is inlined (same arithmetic, same order, as
  :class:`~repro.sim.memory_system.MemorySystem`);
* a warp that is strictly the earliest runnable keeps the issue port
  with no queue round-trip at all.

Wave convergence
----------------

When ``SimConfig.wave_convergence_rtol`` is positive, the simulator
watches the cycles-per-block of successive *waves* (one refill
generation of resident blocks) and stops refilling once steady state
is established, extrapolating the remaining blocks at the converged
rate.  Two predicates can establish it, whichever fires first:

* **analytic** — the measured wave rate matches the steady-state
  roofline ``max(issue_bound, bw_bound)`` within the tolerance, where
  ``issue_bound = warps_per_block * port_cycles`` (every warp's port
  time serialized through the single issue port) and ``bw_bound =
  warps_per_block * dram_bytes / sustained_share`` (the block's DRAM
  traffic at the SM's long-run share of the interface).  A kernel
  whose wave rate sits on either roof is saturated: the port cannot go
  faster, and a bandwidth demand above the sustained share would have
  pushed the measured rate *off* the roof, so the match itself proves
  the burst-window transient is over.  Saturated kernels converge
  after a single wave;
* **wave agreement** — two successive waves agree within the tolerance
  *and* the DRAM sustained-budget backlog is stable (while the burst
  window drains, early waves replay identically at the burst rate even
  though the long-run rate is the slower fair share — matching
  cycles-per-block alone would converge to the transient rate).

The default (0.0) disables both: paper figures are produced in exact
mode, and ``simulated_waves`` caps sampling at two waves.  In
convergence mode :func:`repro.sim.gpu.simulate_kernel` deepens the
sample target to ``convergence_max_waves`` so convergence has blocks
left to extrapolate — the PR-2 predicate never fired in practice
because the two-wave cap made the convergence check coincide with the
final sampled block.

``REPRO_JIT=1`` selects the array-based replay engine of
:mod:`repro.sim.jit` (numba-compiled when numba is importable, the
same code interpreted over numpy arrays otherwise); results are
bit-identical to this engine by construction and pinned by tests.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import current_tracer
from repro.sim.config import SimConfig
from repro.sim.jit import replay_engine
from repro.sim.trace import WarpTrace

# Compiled event opcodes (see compile_trace).  Distinct from the raw
# trace kinds of repro.sim.trace: zero-byte stores compile to COMPUTE
# and zero-byte (texture) loads get their own opcode, so the replay
# loop never re-tests byte counts.
_C_COMPUTE = 0   # (0, duration)
_C_LOAD = 1      # (1, slot, bytes, burst_time, sustained_time, latency)
_C_STORE = 2     # (2, bytes, burst_time, sustained_time)
_C_SFU = 3       # (3, slot)
_C_USE = 4       # (4, slot)
_C_BARRIER = 5   # (5,)
_C_TEXLOAD = 6   # (6, slot, latency)


class SimulationDeadlock(RuntimeError):
    """The event loop wedged; indicates a malformed trace."""


class CompiledTrace:
    """A warp trace linearized for replay, constants precomputed.

    ``events`` is the flat per-warp event list (one entry per dynamic
    event — segment repeats share the same tuple objects, so memory
    stays O(static) plus one pointer per dynamic event).  The
    aggregates feed the analytic convergence bound and the batch
    replayer's vectorized telemetry:

    * ``port_cycles`` — total issue-port cycles one warp consumes
      (integer; COMPUTE durations already include the issue cost);
    * ``dram_bytes`` — one warp's total DRAM traffic in bytes.
    """

    __slots__ = ("events", "n", "port_cycles", "dram_bytes", "slot_count",
                 "jit_arrays")

    def __init__(self, events: List[Tuple], port_cycles: int,
                 dram_bytes: float, slot_count: int) -> None:
        self.events = events
        self.n = len(events)
        self.port_cycles = port_cycles
        self.dram_bytes = dram_bytes
        self.slot_count = slot_count
        # Columnar form for the JIT engine, built lazily by
        # repro.sim.jit._arrays_for and cached here.
        self.jit_arrays = None


def compile_trace(trace: WarpTrace, config: SimConfig) -> CompiledTrace:
    """Linearize a loop-compressed trace into flat precomputed events.

    Every event becomes a tuple whose fields are the exact operands
    the replay loop needs — port durations, the DRAM bucket's two
    service-time divisions, scoreboard slots and latencies — computed
    once here instead of once per replayed instance.  The divisions
    and multiplications performed here are the same IEEE-754
    operations the uncompiled loop performed inline, so replaying the
    compiled form is bit-identical.
    """
    issue_cost = config.issue_cycles_per_instruction
    share = config.bandwidth_bytes_per_cycle_per_sm
    burst_rate = share * config.bandwidth_burst_factor

    compiled_segments: List[List[Tuple]] = []
    port_cycles = 0
    dram_bytes = 0.0
    max_slot = -1
    for segment in trace.segments:
        out: List[Tuple] = []
        for event in segment:
            kind = event[0]
            if kind == 0:      # COMPUTE
                out.append((_C_COMPUTE, event[1] * issue_cost))
            elif kind == 1:    # LOAD
                slot = event[1]
                bytes_, latency = event[2]
                if slot > max_slot:
                    max_slot = slot
                if bytes_ <= 0.0:
                    out.append((_C_TEXLOAD, slot, latency))
                else:
                    out.append((_C_LOAD, slot, bytes_, bytes_ / burst_rate,
                                bytes_ / share, latency))
            elif kind == 2:    # STORE
                bytes_ = event[2]
                if bytes_ > 0.0:
                    out.append((_C_STORE, bytes_, bytes_ / burst_rate,
                                bytes_ / share))
                else:
                    # A zero-byte store holds the port for one issue
                    # slot and touches nothing else — a COMPUTE.
                    out.append((_C_COMPUTE, issue_cost))
            elif kind == 3:    # SFU
                slot = event[1]
                if slot > max_slot:
                    max_slot = slot
                out.append((_C_SFU, slot))
            elif kind == 4:    # USE
                out.append((_C_USE, event[1]))
            elif kind == 5:    # BARRIER
                out.append((_C_BARRIER,))
            else:
                raise SimulationDeadlock(f"unexpected event kind {kind}")
        compiled_segments.append(out)

    events: List[Tuple] = []
    for index, repeat in trace.program:
        segment = compiled_segments[index]
        if repeat == 1:
            events.extend(segment)
        else:
            events.extend(segment * repeat)
    for event in events:
        opcode = event[0]
        if opcode == _C_COMPUTE:
            port_cycles += event[1]
        elif opcode == _C_LOAD:
            port_cycles += issue_cost
            dram_bytes += event[2]
        elif opcode == _C_STORE:
            port_cycles += issue_cost
            dram_bytes += event[1]
        elif opcode == _C_SFU or opcode == _C_TEXLOAD:
            port_cycles += issue_cost
    return CompiledTrace(events, port_cycles, dram_bytes, max_slot + 1)


class _Warp:
    """Out-of-band warp state; the replay position rides in the
    scheduler entry while the warp is queued, and in loop locals while
    it holds the port.  The attribute copies are only maintained at
    barriers, where the releasing warp re-queues its siblings."""

    __slots__ = ("block", "pos", "ready_at", "pending")

    def __init__(self, block: "_Block") -> None:
        self.block = block
        self.pos = 0         # flat event index
        self.ready_at = 0.0
        self.pending: Dict[int, float] = {}


class _Block:
    __slots__ = ("warps", "arrived", "barrier_time", "done_count", "finish_time")

    def __init__(self) -> None:
        self.warps: List[_Warp] = []
        self.arrived = 0
        self.barrier_time = 0.0
        self.done_count = 0
        self.finish_time = 0.0


@dataclasses.dataclass(frozen=True)
class SMResult:
    """Outcome of simulating one SM over a fixed number of blocks."""

    cycles: float
    blocks_completed: int
    issue_busy_cycles: float
    dram_bytes: float
    dram_busy_cycles: float
    #: Telemetry: full refill generations observed by the event loop
    #: and the integer block counts behind them.  ``blocks_replayed``
    #: went through the event loop; ``blocks_extrapolated`` were
    #: projected analytically after wave convergence (0 in exact
    #: mode); ``blocks_resident`` is the residency the waves ran at.
    #: All integers, so they merge exactly across configurations and
    #: pool workers — the old float wave *fraction* did not.
    waves_simulated: int = 0
    blocks_replayed: int = 0
    blocks_extrapolated: int = 0
    blocks_resident: int = 0
    events_replayed: int = 0
    #: Convergence evidence: the wave at which steady state was
    #: established (0 = never), and which predicate fired
    #: ("analytic" / "wave" / "").
    converged_wave: int = 0
    converged_mode: str = ""

    @property
    def cycles_per_block(self) -> float:
        return self.cycles / self.blocks_completed

    @property
    def waves_extrapolated(self) -> float:
        """Derived wave fraction (report tables only — never merged)."""
        if not self.blocks_resident:
            return 0.0
        return self.blocks_extrapolated / self.blocks_resident

    @property
    def issue_utilization(self) -> float:
        return self.issue_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def bandwidth_utilization(self) -> float:
        return self.dram_busy_cycles / self.cycles if self.cycles else 0.0


def simulate_sm(
    trace: WarpTrace,
    warps_per_block: int,
    blocks_resident: int,
    total_blocks: int,
    config: SimConfig,
    compiled: Optional[CompiledTrace] = None,
) -> SMResult:
    """Replay ``total_blocks`` copies of a block's warps on one SM.

    ``blocks_resident`` blocks run concurrently (B_SM); a finished
    block's slot is refilled immediately, as the runtime does.
    ``compiled`` lets a batch caller share one :func:`compile_trace`
    across many replays of the same trace program.
    """
    if total_blocks < blocks_resident:
        blocks_resident = total_blocks
    if compiled is None:
        compiled = compile_trace(trace, config)

    # Tracing costs one flag check when disabled; the replay loop
    # itself is never instrumented (see repro.obs.trace).
    tracer = current_tracer()
    span_started = tracer.now() if tracer is not None else 0.0

    engine = replay_engine()
    if engine is not None:
        state = engine(compiled, warps_per_block, blocks_resident,
                       total_blocks, config)
    else:
        state = _replay(compiled, warps_per_block, blocks_resident,
                        total_blocks, config)
    (cycles, finished_blocks, issue_busy, mem_total_bytes, mem_busy,
     extrapolated_blocks, converged_wave, converged_mode) = state

    events_replayed = compiled.n * warps_per_block * finished_blocks
    if tracer is not None:
        if converged_wave:
            tracer.instant(
                "sm.wave_converged", cat="sim",
                args={"wave": converged_wave, "mode": converged_mode},
            )
        tracer.complete_event(
            "sm.replay", span_started, cat="sim",
            args={
                "blocks": total_blocks,
                "waves_simulated": (finished_blocks // blocks_resident
                                    if blocks_resident else 0),
                "blocks_replayed": finished_blocks,
                "blocks_extrapolated": extrapolated_blocks,
                "events_replayed": events_replayed,
            },
        )
    return SMResult(
        cycles=cycles,
        blocks_completed=finished_blocks + extrapolated_blocks,
        issue_busy_cycles=issue_busy,
        dram_bytes=mem_total_bytes,
        dram_busy_cycles=mem_busy,
        waves_simulated=finished_blocks // blocks_resident if blocks_resident else 0,
        blocks_replayed=finished_blocks,
        blocks_extrapolated=extrapolated_blocks,
        blocks_resident=blocks_resident,
        events_replayed=events_replayed,
        converged_wave=converged_wave,
        converged_mode=converged_mode,
    )


def _replay(
    compiled: CompiledTrace,
    warps_per_block: int,
    blocks_resident: int,
    total_blocks: int,
    config: SimConfig,
) -> Tuple[float, int, float, float, float, int, int, str]:
    """The flat-event interpreter (the default replay engine).

    Returns ``(cycles, blocks_replayed, issue_busy, dram_bytes,
    dram_busy, blocks_extrapolated, converged_wave, converged_mode)``.
    """
    events = compiled.events
    n = compiled.n

    issue_cost = config.issue_cycles_per_instruction
    sfu_cost = config.sfu_cycles_per_instruction
    sfu_latency = config.sfu_result_latency
    rtol = config.wave_convergence_rtol

    # DRAM token bucket, inlined (MemorySystem.request verbatim).
    share = config.bandwidth_bytes_per_cycle_per_sm
    window_cycles = config.burst_window_bytes / share
    mem_burst_free = 0.0
    mem_sustained_end = 0.0
    mem_total_bytes = 0.0
    mem_busy = 0.0

    # Scheduler entries: (ready_at, arrival_seq, warp, pos).  ``fifo``
    # receives only monotone pushes (initial seeding and post-issue
    # re-queues at the nondecreasing port-free time); barrier releases
    # and refills go through ``heap``.
    fifo: deque = deque()
    heap: List[tuple] = []
    sequence = 0
    blocks = [_Block() for _ in range(blocks_resident)]
    for block in blocks:
        for _ in range(warps_per_block):
            w = _Warp(block)
            block.warps.append(w)
            fifo.append((0.0, sequence, w, 0))
            sequence += 1

    port_free = 0.0
    sfu_free = 0.0
    issue_busy = 0.0
    finished_blocks = 0
    blocks_started = blocks_resident
    finish_time = 0.0

    # Wave-convergence state (inactive in exact mode).  The analytic
    # steady-state roofline is per *block*: every warp's port cycles
    # serialized through the single issue port, against the block's
    # DRAM traffic at the sustained share.
    converged = False
    converged_wave = 0
    converged_mode = ""
    steady_cpb = 0.0
    if rtol > 0.0:
        issue_bound = float(warps_per_block * compiled.port_cycles)
        bw_bound = warps_per_block * compiled.dram_bytes / share
        steady_cpb = issue_bound if issue_bound > bw_bound else bw_bound
    prev_cpb = -1.0
    prev_backlog = -1.0
    last_cpb = 0.0
    wave_prev_finish = 0.0
    wave_prev_issue = 0.0
    wave_prev_busy = 0.0
    wave_prev_bytes = 0.0
    wave_issue_pb = 0.0
    wave_busy_pb = 0.0
    wave_bytes_pb = 0.0

    # Current-warp state in locals; ``warp is None`` means "pop next".
    warp: Optional[_Warp] = None
    pos = 0
    ready = 0.0

    while True:
        if warp is None:
            if fifo:
                if heap and heap[0] < fifo[0]:
                    entry = heappop(heap)
                else:
                    entry = fifo.popleft()
            elif heap:
                entry = heappop(heap)
            else:
                break
            ready, _, warp, pos = entry

        if pos == n:
            # End of trace: the warp (and possibly its block) is done.
            block = warp.block
            block.done_count += 1
            if ready > block.finish_time:
                block.finish_time = ready
            if block.done_count == warps_per_block:
                finished_blocks += 1
                if block.finish_time > finish_time:
                    finish_time = block.finish_time
                if (rtol > 0.0 and not converged
                        and finished_blocks % blocks_resident == 0):
                    cpb = (finish_time - wave_prev_finish) / blocks_resident
                    wave_issue_pb = (issue_busy - wave_prev_issue) / blocks_resident
                    wave_busy_pb = (mem_busy - wave_prev_busy) / blocks_resident
                    wave_bytes_pb = (mem_total_bytes - wave_prev_bytes) / blocks_resident
                    backlog = mem_sustained_end - finish_time
                    if backlog < 0.0:
                        backlog = 0.0
                    # Analytic roofline match: a wave rate sitting on
                    # max(issue, bandwidth) is saturated — the port
                    # cannot go faster, and unserved DRAM backlog
                    # would have pushed the rate off the roof — so the
                    # match itself rules out the burst transient.
                    if abs(cpb - steady_cpb) <= rtol * cpb:
                        converged = True
                        converged_mode = "analytic"
                    # Wave agreement needs the backlog-stability guard:
                    # while the burst window drains, early waves replay
                    # identically at the burst rate even though the
                    # long-run rate is the (slower) fair share.
                    elif (prev_cpb >= 0.0
                            and abs(cpb - prev_cpb) <= rtol * cpb
                            and abs(backlog - prev_backlog)
                            <= rtol * cpb * blocks_resident):
                        converged = True
                        converged_mode = "wave"
                    if converged:
                        last_cpb = cpb
                        converged_wave = finished_blocks // blocks_resident
                    prev_cpb = cpb
                    prev_backlog = backlog
                    wave_prev_finish = finish_time
                    wave_prev_issue = issue_busy
                    wave_prev_busy = mem_busy
                    wave_prev_bytes = mem_total_bytes
                if blocks_started < total_blocks and not converged:
                    blocks_started += 1
                    restart = block.finish_time
                    block.done_count = 0
                    block.arrived = 0
                    block.barrier_time = 0.0
                    block.finish_time = 0.0
                    for w in block.warps:
                        w.ready_at = restart
                        w.pending = {}
                        heappush(heap, (restart, sequence, w, 0))
                        sequence += 1
            warp = None
            continue

        event = events[pos]
        kind = event[0]

        if kind == _C_COMPUTE:
            duration = event[1]
            start = port_free if port_free > ready else ready
        elif kind == _C_USE:
            t = warp.pending.pop(event[1], 0.0)
            if t > ready:
                ready = t
            pos += 1
            continue
        elif kind == _C_LOAD:
            duration = issue_cost
            start = port_free if port_free > ready else ready
            now = start + duration
            burst_start = mem_burst_free if mem_burst_free > now else now
            burst_end = burst_start + event[3]
            mem_sustained_end = (
                (mem_sustained_end if mem_sustained_end > now else now)
                + event[4]
            )
            throttled = mem_sustained_end - window_cycles
            service_end = burst_end if burst_end > throttled else throttled
            mem_total_bytes += event[2]
            mem_busy += service_end - burst_start
            mem_burst_free = service_end
            warp.pending[event[1]] = service_end + event[5]
        elif kind == _C_STORE:
            duration = issue_cost
            start = port_free if port_free > ready else ready
            now = start + duration
            burst_start = mem_burst_free if mem_burst_free > now else now
            burst_end = burst_start + event[2]
            mem_sustained_end = (
                (mem_sustained_end if mem_sustained_end > now else now)
                + event[3]
            )
            throttled = mem_sustained_end - window_cycles
            service_end = burst_end if burst_end > throttled else throttled
            mem_total_bytes += event[1]
            mem_busy += service_end - burst_start
            mem_burst_free = service_end
        elif kind == _C_SFU:
            # Issue occupies the port briefly; the SFU pipeline is a
            # separate throughput-limited resource, and the result is
            # scoreboarded until its latency elapses.
            duration = issue_cost
            start = port_free if port_free > ready else ready
            t = start + duration
            sfu_free = (sfu_free if sfu_free > t else t) + sfu_cost
            warp.pending[event[1]] = sfu_free + sfu_latency
        elif kind == _C_BARRIER:
            pos += 1
            warp.pos = pos
            warp.ready_at = ready
            block = warp.block
            block.arrived += 1
            if ready > block.barrier_time:
                block.barrier_time = ready
            if block.arrived == warps_per_block:
                release = block.barrier_time
                block.arrived = 0
                block.barrier_time = 0.0
                for w in block.warps:
                    if release > w.ready_at:
                        w.ready_at = release
                    heappush(heap, (w.ready_at, sequence, w, w.pos))
                    sequence += 1
            warp = None
            continue
        else:                    # _C_TEXLOAD
            duration = issue_cost
            start = port_free if port_free > ready else ready
            warp.pending[event[1]] = start + duration + event[2]

        # Port-consuming epilogue, shared by every issuing opcode.
        ready = start + duration
        port_free = ready
        issue_busy += duration
        pos += 1
        # Keep the port only when strictly earliest; a tie goes to the
        # warp queued first, exactly as the scheduler orders it.
        if fifo:
            head = fifo[0][0]
            if heap:
                t = heap[0][0]
                if t < head:
                    head = t
        elif heap:
            head = heap[0][0]
        else:
            continue
        if head <= ready:
            fifo.append((ready, sequence, warp, pos))
            sequence += 1
            warp = None
        continue

    extrapolated_blocks = total_blocks - finished_blocks
    if extrapolated_blocks and not converged:
        raise SimulationDeadlock(
            f"completed {finished_blocks}/{total_blocks} blocks"
        )
    # A block is not done until its outstanding stores drain; the
    # pipe term is what makes store-bound kernels bandwidth-bound.
    cycles = finish_time
    if port_free > cycles:
        cycles = port_free
    if mem_burst_free > cycles:
        cycles = mem_burst_free
    if extrapolated_blocks:
        cycles += extrapolated_blocks * last_cpb
        issue_busy += extrapolated_blocks * wave_issue_pb
        mem_busy += extrapolated_blocks * wave_busy_pb
        mem_total_bytes += extrapolated_blocks * wave_bytes_pb
    return (cycles, finished_blocks, issue_busy, mem_total_bytes, mem_busy,
            extrapolated_blocks, converged_wave, converged_mode)
