"""Discrete-event timing model of one streaming multiprocessor.

Models the mechanisms Section 2.1 names as the performance
determinants: a single in-order issue port shared by all resident
warps (one warp instruction per four cycles), zero-overhead warp
switching (any ready warp may issue; the SM stalls only when no warp
has ready operands), scoreboarded global loads that block at first
use, block-wide barriers, SFU throughput, and queueing on the DRAM
interface.

The replay loop is the hot path of every configuration sweep, so it is
written for speed without changing the model (the straightforward
heap-loop form lives in ``repro.sim.reference``, and a differential
test pins the equivalence):

* compressed traces are replayed by segment index, never materialized;
* a warp's replay position travels inside its scheduler entry, so the
  steady state runs on tuple unpacking instead of attribute access;
* the scheduler is a FIFO plus a small heap: a warp re-queued after
  issuing carries a key no smaller than any earlier one (the port-free
  time never decreases), so those entries form a monotone queue, and
  only barrier releases and block refills need true heap inserts.
  Popping the smaller head of the two gives exactly the global
  ``(ready_at, arrival)`` order of the single-heap loop — ties between
  warps ready at the same cycle always go to the warp queued first;
* the DRAM token bucket is inlined (same arithmetic, same order, as
  :class:`~repro.sim.memory_system.MemorySystem`);
* a warp that is strictly the earliest runnable keeps the issue port
  with no queue round-trip at all.

When ``SimConfig.wave_convergence_rtol`` is positive, the simulator
additionally watches the cycles-per-block of successive *waves* (one
refill generation of resident blocks) and, once two waves agree within
the tolerance, stops refilling and extrapolates the remaining blocks
at the converged rate.  The default (0.0) disables this: paper figures
are produced in exact mode.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import current_tracer
from repro.sim.config import SimConfig
from repro.sim.trace import WarpTrace


class SimulationDeadlock(RuntimeError):
    """The event loop wedged; indicates a malformed trace."""


class _Warp:
    """Out-of-band warp state; the replay position rides in the
    scheduler entry while the warp is queued, and in loop locals while
    it holds the port.  The attribute copies are only maintained at
    barriers, where the releasing warp re-queues its siblings."""

    __slots__ = ("block", "ri", "rem", "ei", "seg", "seg_len", "ready_at",
                 "pending")

    def __init__(self, block: "_Block", seg: Optional[Tuple], rem: int) -> None:
        self.block = block
        self.ri = 0          # program record index
        self.rem = rem       # repeats left of the current record
        self.ei = 0          # event index within the current segment
        self.seg = seg       # cached segment tuple (None = end of trace)
        self.seg_len = len(seg) if seg is not None else 0
        self.ready_at = 0.0
        self.pending: Dict[int, float] = {}


class _Block:
    __slots__ = ("warps", "arrived", "barrier_time", "done_count", "finish_time")

    def __init__(self) -> None:
        self.warps: List[_Warp] = []
        self.arrived = 0
        self.barrier_time = 0.0
        self.done_count = 0
        self.finish_time = 0.0


@dataclasses.dataclass(frozen=True)
class SMResult:
    """Outcome of simulating one SM over a fixed number of blocks."""

    cycles: float
    blocks_completed: int
    issue_busy_cycles: float
    dram_bytes: float
    dram_busy_cycles: float
    #: Telemetry: full refill generations observed by the event loop,
    #: generations projected analytically after wave convergence, and
    #: trace events actually replayed (extrapolated blocks replay none).
    waves_simulated: int = 0
    waves_extrapolated: float = 0.0
    events_replayed: int = 0

    @property
    def cycles_per_block(self) -> float:
        return self.cycles / self.blocks_completed

    @property
    def issue_utilization(self) -> float:
        return self.issue_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def bandwidth_utilization(self) -> float:
        return self.dram_busy_cycles / self.cycles if self.cycles else 0.0


def simulate_sm(
    trace: WarpTrace,
    warps_per_block: int,
    blocks_resident: int,
    total_blocks: int,
    config: SimConfig,
) -> SMResult:
    """Replay ``total_blocks`` copies of a block's warps on one SM.

    ``blocks_resident`` blocks run concurrently (B_SM); a finished
    block's slot is refilled immediately, as the runtime does.
    """
    if total_blocks < blocks_resident:
        blocks_resident = total_blocks

    # Tracing costs one flag check when disabled; the replay loop
    # itself is never instrumented (see repro.obs.trace).
    tracer = current_tracer()
    span_started = tracer.now() if tracer is not None else 0.0

    segments = trace.segments
    prog = [(segments[i], r, len(segments[i])) for i, r in trace.program]
    nrecords = len(prog)
    if nrecords:
        first_seg, first_rem, first_len = prog[0]
    else:
        first_seg, first_rem, first_len = None, 0, 0

    issue_cost = config.issue_cycles_per_instruction
    sfu_cost = config.sfu_cycles_per_instruction
    sfu_latency = config.sfu_result_latency
    rtol = config.wave_convergence_rtol

    # DRAM token bucket, inlined (MemorySystem.request verbatim).
    share = config.bandwidth_bytes_per_cycle_per_sm
    burst_rate = share * config.bandwidth_burst_factor
    window_cycles = config.burst_window_bytes / share
    mem_burst_free = 0.0
    mem_sustained_end = 0.0
    mem_total_bytes = 0.0
    mem_busy = 0.0

    # Scheduler entries: (ready_at, arrival_seq, warp, ri, rem, ei, seg,
    # seg_len).  ``fifo`` receives only monotone pushes (initial seeding
    # and post-issue re-queues at the nondecreasing port-free time);
    # barrier releases and refills go through ``heap``.
    fifo: deque = deque()
    heap: List[tuple] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    sequence = 0
    blocks = [_Block() for _ in range(blocks_resident)]
    for block in blocks:
        for _ in range(warps_per_block):
            w = _Warp(block, first_seg, first_rem)
            block.warps.append(w)
            fifo.append((0.0, sequence, w, 0, first_rem, 0, first_seg,
                         first_len))
            sequence += 1

    port_free = 0.0
    sfu_free = 0.0
    issue_busy = 0.0
    finished_blocks = 0
    blocks_started = blocks_resident
    finish_time = 0.0

    # Wave-convergence state (inactive in exact mode).
    converged = False
    prev_cpb = -1.0
    prev_backlog = -1.0
    last_cpb = 0.0
    wave_prev_finish = 0.0
    wave_prev_issue = 0.0
    wave_prev_busy = 0.0
    wave_prev_bytes = 0.0
    wave_issue_pb = 0.0
    wave_busy_pb = 0.0
    wave_bytes_pb = 0.0

    # Current-warp state in locals; ``warp is None`` means "pop next".
    warp: Optional[_Warp] = None
    seg: Optional[Tuple] = None
    seg_len = 0
    ri = 0
    rem = 0
    ei = 0
    ready = 0.0

    while True:
        if warp is None:
            if fifo:
                if heap and heap[0] < fifo[0]:
                    entry = heappop(heap)
                else:
                    entry = fifo.popleft()
            elif heap:
                entry = heappop(heap)
            else:
                break
            ready, _, warp, ri, rem, ei, seg, seg_len = entry

        if seg is None:
            # End of trace: the warp (and possibly its block) is done.
            block = warp.block
            block.done_count += 1
            if ready > block.finish_time:
                block.finish_time = ready
            if block.done_count == warps_per_block:
                finished_blocks += 1
                if block.finish_time > finish_time:
                    finish_time = block.finish_time
                if (rtol > 0.0 and not converged
                        and finished_blocks % blocks_resident == 0):
                    cpb = (finish_time - wave_prev_finish) / blocks_resident
                    wave_issue_pb = (issue_busy - wave_prev_issue) / blocks_resident
                    wave_busy_pb = (mem_busy - wave_prev_busy) / blocks_resident
                    wave_bytes_pb = (mem_total_bytes - wave_prev_bytes) / blocks_resident
                    # The DRAM sustained-budget backlog must also be
                    # stable: while the burst window drains, early waves
                    # replay identically at the burst rate even though
                    # the long-run rate is the (slower) fair share —
                    # matching cycles-per-block alone would converge to
                    # the transient rate.  Backlog growth per wave is
                    # measured against the wave period.
                    backlog = mem_sustained_end - finish_time
                    if backlog < 0.0:
                        backlog = 0.0
                    if (prev_cpb >= 0.0
                            and abs(cpb - prev_cpb) <= rtol * cpb
                            and abs(backlog - prev_backlog)
                            <= rtol * cpb * blocks_resident):
                        converged = True
                        last_cpb = cpb
                        if tracer is not None:
                            tracer.instant(
                                "sm.wave_converged", cat="sim",
                                args={
                                    "wave": finished_blocks // blocks_resident,
                                    "cycles_per_block": cpb,
                                },
                            )
                    prev_cpb = cpb
                    prev_backlog = backlog
                    wave_prev_finish = finish_time
                    wave_prev_issue = issue_busy
                    wave_prev_busy = mem_busy
                    wave_prev_bytes = mem_total_bytes
                if blocks_started < total_blocks and not converged:
                    blocks_started += 1
                    restart = block.finish_time
                    block.done_count = 0
                    block.arrived = 0
                    block.barrier_time = 0.0
                    block.finish_time = 0.0
                    for w in block.warps:
                        w.ready_at = restart
                        w.pending = {}
                        heappush(heap, (restart, sequence, w,
                                        0, first_rem, 0, first_seg, first_len))
                        sequence += 1
            warp = None
            continue

        event = seg[ei]
        kind = event[0]

        if kind < 4:
            # Port-consuming event (COMPUTE/LOAD/STORE/SFU): issue it.
            start = port_free if port_free > ready else ready
            if kind == 0:        # COMPUTE
                duration = event[1] * issue_cost
            elif kind == 1:      # LOAD
                duration = issue_cost
                bytes_, latency = event[2]
                now = start + duration
                if bytes_ <= 0.0:
                    warp.pending[event[1]] = now + latency
                else:
                    burst_start = mem_burst_free if mem_burst_free > now else now
                    burst_end = burst_start + bytes_ / burst_rate
                    mem_sustained_end = (
                        (mem_sustained_end if mem_sustained_end > now else now)
                        + bytes_ / share
                    )
                    throttled = mem_sustained_end - window_cycles
                    service_end = burst_end if burst_end > throttled else throttled
                    mem_total_bytes += bytes_
                    mem_busy += service_end - burst_start
                    mem_burst_free = service_end
                    warp.pending[event[1]] = service_end + latency
            elif kind == 2:      # STORE
                duration = issue_cost
                bytes_ = event[2]
                if bytes_ > 0.0:
                    now = start + duration
                    burst_start = mem_burst_free if mem_burst_free > now else now
                    burst_end = burst_start + bytes_ / burst_rate
                    mem_sustained_end = (
                        (mem_sustained_end if mem_sustained_end > now else now)
                        + bytes_ / share
                    )
                    throttled = mem_sustained_end - window_cycles
                    service_end = burst_end if burst_end > throttled else throttled
                    mem_total_bytes += bytes_
                    mem_busy += service_end - burst_start
                    mem_burst_free = service_end
            else:                # SFU
                # Issue occupies the port briefly; the SFU pipeline is
                # a separate throughput-limited resource, and the
                # result is scoreboarded until its latency elapses.
                duration = issue_cost
                t = start + duration
                sfu_free = (sfu_free if sfu_free > t else t) + sfu_cost
                warp.pending[event[1]] = sfu_free + sfu_latency

            ready = start + duration
            port_free = ready
            issue_busy += duration
            ei += 1
            if ei == seg_len:
                ei = 0
                rem -= 1
                if rem == 0:
                    ri += 1
                    if ri == nrecords:
                        seg = None
                    else:
                        seg, rem, seg_len = prog[ri]
            # Keep the port only when strictly earliest; a tie goes to
            # the warp queued first, exactly as the scheduler orders it.
            if fifo:
                head = fifo[0][0]
                if heap:
                    t = heap[0][0]
                    if t < head:
                        head = t
            elif heap:
                head = heap[0][0]
            else:
                continue
            if head <= ready:
                fifo.append((ready, sequence, warp, ri, rem, ei, seg, seg_len))
                sequence += 1
                warp = None
            continue

        if kind == 4:            # USE
            t = warp.pending.pop(event[1], 0.0)
            if t > ready:
                ready = t
            ei += 1
            if ei == seg_len:
                ei = 0
                rem -= 1
                if rem == 0:
                    ri += 1
                    if ri == nrecords:
                        seg = None
                    else:
                        seg, rem, seg_len = prog[ri]
            continue

        if kind == 5:            # BARRIER
            ei += 1
            if ei == seg_len:
                ei = 0
                rem -= 1
                if rem == 0:
                    ri += 1
                    if ri == nrecords:
                        seg = None
                    else:
                        seg, rem, seg_len = prog[ri]
            warp.ri = ri
            warp.rem = rem
            warp.ei = ei
            warp.seg = seg
            warp.seg_len = seg_len
            warp.ready_at = ready
            block = warp.block
            block.arrived += 1
            if ready > block.barrier_time:
                block.barrier_time = ready
            if block.arrived == warps_per_block:
                release = block.barrier_time
                block.arrived = 0
                block.barrier_time = 0.0
                for w in block.warps:
                    if release > w.ready_at:
                        w.ready_at = release
                    heappush(heap, (w.ready_at, sequence, w,
                                    w.ri, w.rem, w.ei, w.seg, w.seg_len))
                    sequence += 1
            warp = None
            continue

        raise SimulationDeadlock(f"unexpected event kind {kind}")

    extrapolated_blocks = total_blocks - finished_blocks
    if extrapolated_blocks and not converged:
        raise SimulationDeadlock(
            f"completed {finished_blocks}/{total_blocks} blocks"
        )
    # A block is not done until its outstanding stores drain; the
    # pipe term is what makes store-bound kernels bandwidth-bound.
    cycles = finish_time
    if port_free > cycles:
        cycles = port_free
    if mem_burst_free > cycles:
        cycles = mem_burst_free
    if extrapolated_blocks:
        cycles += extrapolated_blocks * last_cpb
        issue_busy += extrapolated_blocks * wave_issue_pb
        mem_busy += extrapolated_blocks * wave_busy_pb
        mem_total_bytes += extrapolated_blocks * wave_bytes_pb
    if tracer is not None:
        tracer.complete_event(
            "sm.replay", span_started, cat="sim",
            args={
                "blocks": total_blocks,
                "waves_simulated": (finished_blocks // blocks_resident
                                    if blocks_resident else 0),
                "waves_extrapolated": (extrapolated_blocks / blocks_resident
                                       if blocks_resident else 0.0),
                "events_replayed": len(trace) * warps_per_block * finished_blocks,
            },
        )
    return SMResult(
        cycles=cycles,
        blocks_completed=finished_blocks + extrapolated_blocks,
        issue_busy_cycles=issue_busy,
        dram_bytes=mem_total_bytes,
        dram_busy_cycles=mem_busy,
        waves_simulated=finished_blocks // blocks_resident if blocks_resident else 0,
        waves_extrapolated=(extrapolated_blocks / blocks_resident
                            if blocks_resident else 0.0),
        events_replayed=len(trace) * warps_per_block * finished_blocks,
    )
