"""Discrete-event timing model of one streaming multiprocessor.

Models the mechanisms Section 2.1 names as the performance
determinants: a single in-order issue port shared by all resident
warps (one warp instruction per four cycles), zero-overhead warp
switching (any ready warp may issue; the SM stalls only when no warp
has ready operands), scoreboarded global loads that block at first
use, block-wide barriers, SFU throughput, and queueing on the DRAM
interface.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List

from repro.sim.config import SimConfig
from repro.sim.memory_system import MemorySystem
from repro.sim.trace import BARRIER, COMPUTE, LOAD, SFU, STORE, USE, WarpTrace


class SimulationDeadlock(RuntimeError):
    """The event loop wedged; indicates a malformed trace."""


class _Warp:
    __slots__ = ("index", "block", "pos", "ready_at", "pending", "done",
                 "at_barrier")

    def __init__(self, index: int, block: "_Block") -> None:
        self.index = index
        self.block = block
        self.reset(0.0)

    def reset(self, start_time: float) -> None:
        self.pos = 0
        self.ready_at = start_time
        self.pending: Dict[int, float] = {}
        self.done = False
        self.at_barrier = False


class _Block:
    __slots__ = ("warps", "arrived", "barrier_time", "done_count", "finish_time")

    def __init__(self) -> None:
        self.warps: List[_Warp] = []
        self.arrived = 0
        self.barrier_time = 0.0
        self.done_count = 0
        self.finish_time = 0.0


@dataclasses.dataclass(frozen=True)
class SMResult:
    """Outcome of simulating one SM over a fixed number of blocks."""

    cycles: float
    blocks_completed: int
    issue_busy_cycles: float
    dram_bytes: float
    dram_busy_cycles: float

    @property
    def cycles_per_block(self) -> float:
        return self.cycles / self.blocks_completed

    @property
    def issue_utilization(self) -> float:
        return self.issue_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def bandwidth_utilization(self) -> float:
        return self.dram_busy_cycles / self.cycles if self.cycles else 0.0


def simulate_sm(
    trace: WarpTrace,
    warps_per_block: int,
    blocks_resident: int,
    total_blocks: int,
    config: SimConfig,
) -> SMResult:
    """Replay ``total_blocks`` copies of a block's warps on one SM.

    ``blocks_resident`` blocks run concurrently (B_SM); a finished
    block's slot is refilled immediately, as the runtime does.
    """
    if total_blocks < blocks_resident:
        blocks_resident = total_blocks
    memory = MemorySystem(config)
    events = trace.events
    issue_cost = config.issue_cycles_per_instruction
    sfu_cost = config.sfu_cycles_per_instruction

    blocks = [_Block() for _ in range(blocks_resident)]
    heap: List[tuple] = []
    sequence = 0
    for block in blocks:
        for _ in range(warps_per_block):
            warp = _Warp(sequence, block)
            block.warps.append(warp)
            heapq.heappush(heap, (0.0, sequence, warp))
            sequence += 1

    port_free = 0.0
    sfu_free = 0.0
    issue_busy = 0.0
    finished_blocks = 0
    blocks_started = blocks_resident
    finish_time = 0.0

    def settle(warp: _Warp) -> bool:
        """Advance through non-port events; True if warp can issue."""
        nonlocal finished_blocks, blocks_started, finish_time, sequence
        while True:
            if warp.pos >= len(events):
                warp.done = True
                block = warp.block
                block.done_count += 1
                block.finish_time = max(block.finish_time, warp.ready_at)
                if block.done_count == len(block.warps):
                    finished_blocks += 1
                    finish_time = max(finish_time, block.finish_time)
                    if blocks_started < total_blocks:
                        blocks_started += 1
                        restart = block.finish_time
                        block.done_count = 0
                        block.arrived = 0
                        block.barrier_time = 0.0
                        block.finish_time = 0.0
                        for w in block.warps:
                            w.reset(restart)
                            sequence += 1
                            heapq.heappush(heap, (restart, sequence, w))
                return False
            kind, a, b = events[warp.pos]
            if kind == USE:
                warp.ready_at = max(warp.ready_at, warp.pending.pop(a, 0.0))
                warp.pos += 1
                continue
            if kind == BARRIER:
                block = warp.block
                block.arrived += 1
                block.barrier_time = max(block.barrier_time, warp.ready_at)
                warp.at_barrier = True
                warp.pos += 1
                if block.arrived == len(block.warps):
                    release = block.barrier_time
                    block.arrived = 0
                    block.barrier_time = 0.0
                    for w in block.warps:
                        w.at_barrier = False
                        w.ready_at = max(w.ready_at, release)
                        sequence += 1
                        heapq.heappush(heap, (w.ready_at, sequence, w))
                return False
            return True

    while heap:
        _, _, warp = heapq.heappop(heap)
        if warp.done or warp.at_barrier:
            continue
        if not settle(warp):
            continue
        kind, a, b = events[warp.pos]
        start = max(port_free, warp.ready_at)
        if kind == COMPUTE:
            duration = a * issue_cost
            warp.ready_at = start + duration
        elif kind == SFU:
            # Issue occupies the port briefly; the SFU pipeline is a
            # separate throughput-limited resource, and the result is
            # scoreboarded until its latency elapses.
            duration = issue_cost
            sfu_free = max(sfu_free, start + duration) + sfu_cost
            warp.pending[a] = sfu_free + config.sfu_result_latency
            warp.ready_at = start + duration
        elif kind == LOAD:
            duration = issue_cost
            bytes_, latency = b
            completion = memory.request(start + duration, bytes_, latency)
            warp.pending[a] = completion
            warp.ready_at = start + duration
        elif kind == STORE:
            duration = issue_cost
            memory.request(start + duration, a, 0.0)
            warp.ready_at = start + duration
        else:
            raise SimulationDeadlock(f"unexpected event kind {kind}")
        port_free = start + duration
        issue_busy += duration
        warp.pos += 1
        sequence += 1
        heapq.heappush(heap, (warp.ready_at, sequence, warp))

    if finished_blocks < total_blocks:
        raise SimulationDeadlock(
            f"completed {finished_blocks}/{total_blocks} blocks"
        )
    return SMResult(
        # A block is not done until its outstanding stores drain; the
        # pipe term is what makes store-bound kernels bandwidth-bound.
        cycles=max(finish_time, port_free, memory.pipe_free_at),
        blocks_completed=finished_blocks,
        issue_busy_cycles=issue_busy,
        dram_bytes=memory.total_bytes,
        dram_busy_cycles=memory.busy_cycles,
    )
