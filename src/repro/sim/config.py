"""Timing-simulator configuration.

These knobs model the second-order effects that the paper's metrics
deliberately ignore (Section 5.3) — finite memory bandwidth,
coalescing, SFU throughput, cache conflicts.  Keeping them out of the
metrics and in the simulator is what makes the Pareto-pruning result a
measurement rather than a tautology.
"""

from __future__ import annotations

import dataclasses

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec


@dataclasses.dataclass(frozen=True)
class SimConfig:
    """Cost model of the timing simulator."""

    device: DeviceSpec = GEFORCE_8800_GTX

    # A warp issues over four cycles on the eight SPs (Section 2.1).
    issue_cycles_per_instruction: int = 4

    # Two SFUs per SM: a 32-thread warp's transcendental takes 16
    # cycles of SFU throughput, and its result is not forwardable to a
    # dependent instruction until the SFU pipeline drains — with few
    # resident warps that latency is exposed (the utilization collapse
    # of Figure 5).
    sfu_cycles_per_instruction: int = 16
    sfu_result_latency: int = 36

    # Uncoalesced warp accesses are split into per-thread DRAM
    # transactions padded to the 32-byte minimum segment: a 4-byte
    # word costs eight times its size in interface traffic on the G80.
    uncoalesced_traffic_factor: float = 8.0

    # Barrier-phased kernels issue their loads in bursts while other
    # SMs are in compute phases, so short bursts are served well above
    # one SM's long-run fair share of the interface.  The token-bucket
    # model serves up to ``burst_window_bytes`` at ``burst_factor``
    # times the fair share before throttling to the sustained rate.
    bandwidth_burst_factor: float = 4.0
    burst_window_bytes: float = 8192.0

    # Constant-cache access conflict serialization (Table 1: "the
    # cache is single-ported, so simultaneous requests within an SM
    # must be to the same address or delays will occur").  1 = no
    # conflicts; k charges each constant load k issue slots.
    constant_conflict_ways: int = 1

    # Shared-memory bank serialization (Table 1: 16 banks; "it is
    # often possible to organize both threads and data such that bank
    # conflicts seldom or never occur" — hence the default of 1).
    # k charges each shared access k issue slots.
    shared_bank_conflict_ways: int = 1

    # Texture hits come from the per-two-SM cache, so they carry
    # latency but do not consume DRAM bandwidth.
    texture_latency_cycles: int = 120

    # How many full SM residencies to simulate before extrapolating
    # steady-state throughput to the whole grid.
    simulated_waves: int = 2

    # Relative tolerance for steady-state wave convergence: when the
    # measured cycles-per-block of a wave matches the analytic
    # steady-state roofline, or two successive waves agree (with a
    # stable DRAM backlog), the simulator stops refilling block slots
    # and extrapolates the remaining blocks at the converged rate.
    # 0.0 (the default) disables extrapolation — exact mode, used for
    # all paper figures, where ``simulated_waves`` caps sampling.
    wave_convergence_rtol: float = 0.0

    # Sampling depth in convergence mode: up to this many waves are
    # simulated while waiting for convergence (instead of the
    # ``simulated_waves`` cap, which would leave nothing to
    # extrapolate).  A space that never converges simply replays this
    # many waves exactly.
    convergence_max_waves: int = 8

    def __post_init__(self) -> None:
        if self.constant_conflict_ways < 1:
            raise ValueError("constant_conflict_ways must be >= 1")
        if self.shared_bank_conflict_ways < 1:
            raise ValueError("shared_bank_conflict_ways must be >= 1")
        if self.simulated_waves < 1:
            raise ValueError("simulated_waves must be >= 1")
        if self.wave_convergence_rtol < 0.0:
            raise ValueError("wave_convergence_rtol must be >= 0")
        if self.convergence_max_waves < 1:
            raise ValueError("convergence_max_waves must be >= 1")

    @property
    def global_latency_cycles(self) -> int:
        return self.device.global_latency_cycles

    @property
    def bandwidth_bytes_per_cycle_per_sm(self) -> float:
        """Each SM's fair share of the 86.4 GB/s DRAM interface."""
        return self.device.bytes_per_cycle / self.device.num_sms


DEFAULT_SIM_CONFIG = SimConfig()
