"""DRAM interface model: fixed latency plus token-bucket bandwidth.

Two constraints govern a transfer's completion:

* a *burst* pipe serving requests at several times one SM's fair
  share of the 86.4 GB/s interface — barrier-phased kernels load in
  bursts while other SMs compute, so short bursts see far more than
  the long-run average; and
* a *sustained* budget accruing at exactly the fair share — over any
  long window an SM cannot move more than its share, which is what
  makes genuinely bandwidth-bound configurations (the paper's 8x8
  matmul tiles) slow regardless of burstiness.
"""

from __future__ import annotations

from repro.sim.config import SimConfig


class MemorySystem:
    """Per-SM view of the global-memory interface."""

    def __init__(self, config: SimConfig) -> None:
        self._share = config.bandwidth_bytes_per_cycle_per_sm
        self._burst_rate = self._share * config.bandwidth_burst_factor
        self._window_cycles = config.burst_window_bytes / self._share
        self._burst_free_at = 0.0
        self._sustained_end = 0.0
        self.total_bytes = 0.0
        self.busy_cycles = 0.0

    def request(self, now: float, bytes_: float, latency: float) -> float:
        """Issue a transfer; returns its completion time.

        Zero-byte requests (texture-cache hits) only pay latency.
        """
        if bytes_ <= 0.0:
            return now + latency
        burst_start = max(self._burst_free_at, now)
        burst_end = burst_start + bytes_ / self._burst_rate
        # The sustained budget never idles below "now": credit does
        # not accumulate while the SM is not using memory beyond one
        # burst window.
        self._sustained_end = (
            max(self._sustained_end, now) + bytes_ / self._share
        )
        service_end = max(burst_end, self._sustained_end - self._window_cycles)
        self.total_bytes += bytes_
        self.busy_cycles += service_end - burst_start
        self._burst_free_at = service_end
        return service_end + latency

    @property
    def pipe_free_at(self) -> float:
        return self._burst_free_at
