"""Whole-GPU timing estimate for one kernel configuration.

The full grids of the paper's applications run tens of thousands of
thread blocks; simulating each one is pointless because blocks are
identical in structure.  We simulate a couple of full residencies of
one SM (fill + steady state) and extrapolate block throughput across
the grid and the 16 SMs — the same reasoning the paper applies when it
scales results from reduced inputs ("execution time will scale
accordingly with an increase in input data size").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.arch.occupancy import LaunchError, Occupancy
from repro.cubin.resources import ResourceUsage, cubin_info
from repro.ir.kernel import Kernel
from repro.obs.trace import span
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.sim.fingerprint import SimulationCache, kernel_fingerprint
from repro.sim.sm import SMResult, compile_trace, simulate_sm
from repro.sim.trace import build_trace


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Timing estimate plus the evidence behind it."""

    kernel_name: str
    cycles: float
    seconds: float
    occupancy: Occupancy
    resources: ResourceUsage
    sm: SMResult
    trace_events: int
    blocks_sampled: int
    blocks_per_sm_total: int

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


def _wave_budget(config: SimConfig) -> int:
    """How many waves' worth of blocks to hand the SM replayer.

    Exact mode samples ``simulated_waves`` residencies and scales.  In
    convergence mode the budget deepens to ``convergence_max_waves``:
    the replayer stops at the wave where steady state is established
    and extrapolates the rest, so the deeper budget costs nothing once
    convergence fires — and the old two-wave cap is precisely why the
    PR-2 convergence predicate never triggered (the check coincided
    with the final sampled block, leaving zero blocks to extrapolate).
    """
    if config.wave_convergence_rtol > 0.0:
        return max(config.simulated_waves, config.convergence_max_waves)
    return config.simulated_waves


def simulate_kernel(
    kernel: Kernel,
    config: SimConfig = DEFAULT_SIM_CONFIG,
    resources: Optional[ResourceUsage] = None,
    cache: Optional[SimulationCache] = None,
    compiled_cache: Optional[dict] = None,
) -> SimulationResult:
    """Estimate a kernel's execution time on the device.

    Raises LaunchError for configurations that do not fit on an SM —
    the paper's "invalid executable" points.

    ``resources`` threads in the compile pass a caller (the static
    metric stage) has already run for this kernel.  ``cache`` enables
    content-addressed sharing: the kernel is fingerprinted (see
    :mod:`repro.sim.fingerprint`) and the compile pass, the warp
    trace, and the SM replay are each reused whenever another kernel
    with the same post-transform code shape was simulated before.
    Only ``blocks_per_sm_total`` — the single grid-dependent factor —
    is recomputed per call, so cache hits are exact, not approximate.

    ``compiled_cache`` lets a batch caller (see
    :func:`repro.sim.batch.simulate_kernel_batch`) share one
    :func:`~repro.sim.sm.compile_trace` linearization across every
    replay of the same trace object; replay results are bit-identical
    with or without it.
    """
    fingerprint = None
    if cache is not None:
        fingerprint = kernel_fingerprint(kernel, config)
    if resources is None:
        if fingerprint is not None:
            resources = cache.lookup_resources(fingerprint)
        if resources is None:
            with span("sim.compile", cat="sim", kernel=kernel.name):
                resources = cubin_info(kernel)
            if fingerprint is not None:
                cache.store_resources(fingerprint, resources)
    elif fingerprint is not None:
        # Threaded-in compile results seed the cache for siblings.
        cache.store_resources(fingerprint, resources)
    occupancy = resources.occupancy(config.device)

    trace = None
    if fingerprint is not None:
        trace = cache.lookup_trace(fingerprint)
    if trace is None:
        with span("sim.trace_build", cat="sim", kernel=kernel.name):
            trace = build_trace(kernel, config)
        if fingerprint is not None:
            cache.store_trace(fingerprint, trace)
    blocks_per_sm_total = math.ceil(kernel.num_blocks / config.device.num_sms)
    blocks_to_sample = min(
        blocks_per_sm_total,
        occupancy.blocks_per_sm * _wave_budget(config),
    )
    sm_result = None
    if fingerprint is not None:
        sm_result = cache.lookup_sm(fingerprint, blocks_to_sample)
    if sm_result is None:
        compiled = None
        if compiled_cache is not None:
            # Keyed on trace identity (the entry holds the trace, so
            # the id cannot be recycled while the cache lives); the
            # fingerprint tier already hands equal-fingerprint kernels
            # the same trace object.
            entry = compiled_cache.get(id(trace))
            if entry is None:
                compiled = compile_trace(trace, config)
                compiled_cache[id(trace)] = (trace, compiled)
            else:
                compiled = entry[1]
        sm_result = simulate_sm(
            trace=trace,
            warps_per_block=occupancy.warps_per_block,
            blocks_resident=occupancy.blocks_per_sm,
            total_blocks=blocks_to_sample,
            config=config,
            compiled=compiled,
        )
        if fingerprint is not None:
            cache.store_sm(fingerprint, blocks_to_sample, sm_result)
    cycles = sm_result.cycles_per_block * blocks_per_sm_total
    return SimulationResult(
        kernel_name=kernel.name,
        cycles=cycles,
        seconds=config.device.cycles_to_seconds(cycles),
        occupancy=occupancy,
        resources=resources,
        sm=sm_result,
        trace_events=len(trace),
        blocks_sampled=blocks_to_sample,
        blocks_per_sm_total=blocks_per_sm_total,
    )


def simulate_seconds(
    kernel: Kernel,
    config: SimConfig = DEFAULT_SIM_CONFIG,
    resources: Optional[ResourceUsage] = None,
    cache: Optional[SimulationCache] = None,
) -> float:
    """Scalar timing entry point: estimated seconds for one kernel.

    The measurement the search strategies pay for, reduced to the one
    float the execution engine caches, checkpoints, and ships across
    process-pool boundaries (see ``repro.tuning.engine``).
    """
    return simulate_kernel(kernel, config, resources, cache).seconds


__all__ = [
    "LaunchError",
    "SimulationCache",
    "SimulationResult",
    "kernel_fingerprint",
    "simulate_kernel",
    "simulate_seconds",
]
