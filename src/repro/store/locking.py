"""Advisory file locking for cross-process store sharing.

The result store is designed to be shared by concurrent processes —
several harness invocations, or a sweep's parent process while another
sweep reads warm entries.  Readers are lock-free (entries are written
atomically and carry a digest, so a torn read is detected, not
trusted); writers serialize on one advisory ``flock`` so eviction
scans never race a concurrent write's size accounting.

``fcntl`` is POSIX-only; on platforms without it the lock degrades to
a no-op, which keeps single-process use (the overwhelmingly common
case) correct — the atomic-replace write protocol alone guarantees
readers never see partial entries.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class FileLock:
    """An advisory exclusive lock on a path, held for a ``with`` block.

    Reentrant within a process is *not* supported (and not needed —
    the store takes it once per mutation).  The lock file itself is
    never deleted, so two processes always contend on the same inode.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def __enter__(self) -> "FileLock":
        if fcntl is not None:
            self._handle = open(self.path, "a+b")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None

    # The lock is re-acquired per operation and never pickled holding
    # a handle, so forked/pickled stores stay usable.
    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._handle = None


def ensure_lock_file(path: str) -> None:
    """Create the lock file if missing (empty; contents are never read)."""
    if not os.path.exists(path):
        try:
            with open(path, "ab"):
                pass
        except OSError:
            pass  # another process won the race; the inode exists


__all__ = ["FileLock", "ensure_lock_file"]
