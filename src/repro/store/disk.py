"""Disk-backed, content-addressed store for simulation artifacts.

The in-memory :class:`repro.sim.fingerprint.SimulationCache` makes a
warm sweep ~4x faster than a cold one, but it dies with the process.
:class:`ResultStore` is the durable tier underneath it: the same four
content-addressed families — compile results (whole
:class:`~repro.metrics.model.MetricReport`\\ s), compile-pass resource
usage, loop-compressed warp traces, and ``(fingerprint,
blocks_sampled)``-keyed SM replays — keyed by the PR 2/4
``kernel_fingerprint``, so any process that computes the same
post-transform kernel reads the artifact instead of recomputing it.

On-disk layout (all paths relative to the store root)::

    VERSION                     # json: {"magic": ..., "schema": N}
    .lock                       # advisory flock for writers
    <tier>/<fp[:2]>/<name>.entry

where ``tier`` is one of ``resources`` / ``trace`` / ``sm`` /
``compile``, ``fp`` is the 64-hex-char kernel fingerprint, and
``name`` is the fingerprint itself (``sm`` entries append
``-<blocks_sampled>``).  Each entry file is::

    repro-store <schema> <tier> <sha256(payload)> <len(payload)>\\n
    <payload>                   # pickled artifact

Contracts (mirroring the PR 5 checkpoint-recovery contract):

* **atomicity** — entries and the version marker are written via
  tmp-file + :func:`os.replace` (see :mod:`repro.store.atomic`), so a
  reader never observes a partial entry;
* **corruption tolerance** — a truncated, garbled, wrong-version, or
  undecodable entry is a *miss*: it is warned about, counted
  (``corrupt``), removed best-effort, and recomputed by the caller —
  never an exception on the hot path;
* **concurrency** — writers serialize on an advisory file lock
  (:mod:`repro.store.locking`); readers are lock-free and rely on the
  digest to reject torn or half-replaced entries;
* **bounded size** — with ``max_bytes`` set, the store keeps a
  *running* byte total and an in-memory ``path -> (mtime, size)``
  index, initialized by one full directory walk when the store is
  opened.  Each write costs O(1) ``stat`` calls: the total is updated
  incrementally, and only when it passes the ``max_bytes`` high-water
  mark does an LRU sweep run — evicting the oldest entries (by mtime,
  refreshed on every read hit) straight from the index, with no
  directory walk on the write path.  A full re-walk happens only on
  open, on corruption recovery, on a periodic schedule (every
  ``_RESYNC_WRITE_INTERVAL`` writes or ``_RESYNC_SECONDS`` between
  writes — amortized O(1) per write), or when the index drains while
  the running total still exceeds the bound.  The periodic resync is
  what keeps the bound anchored to *actual* disk usage when several
  writers share the root: between resyncs each writer only counts its
  own deltas, so the bound is per-writer-approximate with drift capped
  by the resync interval.
  Concurrent evictors are tolerated: an entry another process already
  unlinked is dropped from the index without raising and without
  inflating this store's ``evictions`` count.

Counters (``hits`` / ``misses`` / ``evictions`` / ``corrupt`` /
``bulk_reads`` / ``bytes_verified``) are plain attributes;
:class:`~repro.sim.fingerprint.SimulationCache` surfaces them as
``store_*`` telemetry through the usual counter-delta plumbing, so
totals stay exact under any worker count.

Read verification is a policy (``verify=``): ``"always"`` (the
default — every read hashes its payload, the original behaviour),
``"open"`` (hash only the first read of each entry file per instance),
or ``"sampled"`` (first read plus a deterministic 1-in-N of repeat
reads).  Under *every* policy the first read of a path is fully
verified, and a ``store()`` through this instance re-arms verification
for the replaced path — so the corruption matrix holds unchanged; the
relaxed policies only skip re-hashing payloads this instance has
already proven.  ``bytes_verified`` counts the bytes actually hashed,
making the sha256-per-read cost visible in telemetry.
"""

from __future__ import annotations

import json
import hashlib
import logging
import os
import pickle
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.store.atomic import atomic_write_bytes, atomic_write_text
from repro.store.locking import FileLock, ensure_lock_file

logger = logging.getLogger(__name__)

#: bump when the entry encoding (header or pickle schema) changes;
#: entries written by another schema are dropped and recomputed.
#: v2: SMResult grew integer block counters (blocks_replayed /
#: blocks_extrapolated / blocks_resident) replacing the float wave
#: fraction, so v1 sm-tier pickles no longer match the dataclass.
SCHEMA_VERSION = 2
MAGIC = "repro-store"

#: artifact families the store persists, one directory each
RESOURCES_TIER = "resources"
TRACE_TIER = "trace"
SM_TIER = "sm"
COMPILE_TIER = "compile"
TIERS = (RESOURCES_TIER, TRACE_TIER, SM_TIER, COMPILE_TIER)

#: environment variable naming the store directory (the harness's
#: ``--store`` flag wins when both are given)
STORE_ENV = "REPRO_STORE"
#: optional size bound for the store, in mebibytes
STORE_MAX_MB_ENV = "REPRO_STORE_MAX_MB"
#: optional read-verification policy override
STORE_VERIFY_ENV = "REPRO_STORE_VERIFY"

#: read-verification policies: hash every read / only the first read
#: of each entry file / first read plus a deterministic 1-in-N sample
VERIFY_ALWAYS = "always"
VERIFY_OPEN = "open"
VERIFY_SAMPLED = "sampled"
VERIFY_POLICIES = (VERIFY_ALWAYS, VERIFY_OPEN, VERIFY_SAMPLED)

#: under ``verify="sampled"``, re-hash one in this many repeat reads
_VERIFY_SAMPLE_INTERVAL = 16

#: a store key: the fingerprint, or (fingerprint, blocks_sampled)
StoreKey = Union[str, Tuple[str, int]]
#: one transferable artifact: (tier, key, object) — what pool workers
#: ship back to the parent for write-back
StoreEntry = Tuple[str, StoreKey, Any]

_VERSION_FILE = "VERSION"
_LOCK_FILE = ".lock"
_ENTRY_SUFFIX = ".entry"

#: bounded stores resync their size index from a full walk every this
#: many writes (or after ``_RESYNC_SECONDS`` between writes) so the
#: ``max_bytes`` bound tracks *actual* disk usage under concurrent
#: writers, not just this instance's own deltas — between resyncs the
#: bound is per-writer-approximate
_RESYNC_WRITE_INTERVAL = 512
_RESYNC_SECONDS = 300.0


class ResultStore:
    """One on-disk store rooted at ``path`` (created if missing).

    ``max_bytes=None`` (the default) disables eviction.  The instance
    holds no open file handles between operations, so it survives
    ``fork`` and pickling — each pool worker's copy simply reads the
    same directory.
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = None,
        verify: str = VERIFY_ALWAYS,
    ) -> None:
        self.path = os.path.abspath(path)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive or None, got {max_bytes}")
        if verify not in VERIFY_POLICIES:
            raise ValueError(
                f"verify must be one of {VERIFY_POLICIES}, got {verify!r}"
            )
        self.max_bytes = max_bytes
        self.verify = verify
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self.bulk_reads = 0
        self.bytes_verified = 0
        #: entry paths whose payload digest this instance has already
        #: checked; a local ``store()`` (or corruption cleanup) re-arms
        #: verification by discarding the path.  Only consulted by the
        #: relaxed policies — ``"always"`` never skips the hash.
        self._verified_paths: set = set()
        self.verify_sample_interval = _VERIFY_SAMPLE_INTERVAL
        self._reads_since_sample = 0
        self._lock = FileLock(os.path.join(self.path, _LOCK_FILE))
        #: size accounting for the eviction bound: ``path -> (mtime,
        #: size)`` plus a running byte total.  ``None`` when the store
        #: is unbounded (no accounting cost at all) or before the first
        #: resync.  Writes keep it incrementally current; a full walk
        #: happens only in :meth:`_resync_index`.
        self._index: Optional[Dict[str, Tuple[float, int]]] = None
        self._total_bytes = 0
        #: periodic-resync schedule (write count / wall clock); tests
        #: may lower the interval to exercise drift recovery quickly
        self.resync_write_interval = _RESYNC_WRITE_INTERVAL
        self.resync_seconds = _RESYNC_SECONDS
        self._writes_since_resync = 0
        self._last_resync = time.time()
        self._ensure_layout()
        if self.max_bytes is not None:
            self._resync_index()

    # ------------------------------------------------------------------
    # Layout and versioning.

    def _ensure_layout(self) -> None:
        for tier in TIERS:
            os.makedirs(os.path.join(self.path, tier), exist_ok=True)
        ensure_lock_file(self._lock.path)
        version_path = os.path.join(self.path, _VERSION_FILE)
        stamp = {"magic": MAGIC, "schema": SCHEMA_VERSION}
        try:
            with open(version_path) as handle:
                found = json.load(handle)
            if not isinstance(found, dict) or found.get("magic") != MAGIC:
                raise ValueError(f"not a {MAGIC} marker: {found!r}")
        except FileNotFoundError:
            atomic_write_text(version_path, json.dumps(stamp) + "\n")
            return
        except (json.JSONDecodeError, UnicodeDecodeError, OSError, ValueError) as error:
            # A damaged marker never blocks the store: entries carry
            # their own versioned headers, so stale ones are dropped
            # lazily; re-stamp and continue.
            self.corrupt += 1
            logger.warning(
                "store %r: unreadable VERSION marker (%s); re-stamping "
                "schema %d — entries from other schemas will be dropped "
                "and recomputed", self.path, error, SCHEMA_VERSION,
            )
            atomic_write_text(version_path, json.dumps(stamp) + "\n")
            return
        if found.get("schema") != SCHEMA_VERSION:
            self.corrupt += 1
            logger.warning(
                "store %r: schema %r on disk, this build writes %d; "
                "existing entries will be dropped and recomputed",
                self.path, found.get("schema"), SCHEMA_VERSION,
            )
            atomic_write_text(version_path, json.dumps(stamp) + "\n")

    # ------------------------------------------------------------------
    # Key -> path mapping.

    @staticmethod
    def _entry_name(tier: str, key: StoreKey) -> str:
        if tier == SM_TIER:
            fingerprint, blocks = key
            return f"{fingerprint}-{int(blocks)}"
        return str(key)

    def _entry_path(self, tier: str, key: StoreKey) -> str:
        name = self._entry_name(tier, key)
        return os.path.join(self.path, tier, name[:2], name + _ENTRY_SUFFIX)

    # ------------------------------------------------------------------
    # Encoding.

    @staticmethod
    def _encode(tier: str, obj: Any) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        header = f"{MAGIC} {SCHEMA_VERSION} {tier} {digest} {len(payload)}\n"
        return header.encode("ascii") + payload

    def _should_verify(self, path: str) -> bool:
        """Whether this read hashes its payload, per the verify policy.

        The first read of any path is always verified regardless of
        policy — the relaxed modes only skip re-proving payloads this
        instance has already checked.
        """
        if self.verify == VERIFY_ALWAYS or path not in self._verified_paths:
            return True
        if self.verify == VERIFY_OPEN:
            return False
        self._reads_since_sample += 1
        if self._reads_since_sample >= self.verify_sample_interval:
            self._reads_since_sample = 0
            return True
        return False

    def _decode(
        self, blob: bytes, tier: str, path: str, check_digest: bool = True
    ) -> Optional[Any]:
        """Payload object, or ``None`` after counting + logging corruption."""
        newline = blob.find(b"\n")
        reason = None
        if newline < 0:
            reason = "no header line"
        else:
            fields = blob[:newline].split(b" ")
            payload = blob[newline + 1:]
            if len(fields) != 5 or fields[0] != MAGIC.encode("ascii"):
                reason = "malformed header"
            elif fields[1] != str(SCHEMA_VERSION).encode("ascii"):
                reason = f"schema {fields[1].decode('ascii', 'replace')!r} " \
                         f"(this build reads {SCHEMA_VERSION})"
            elif fields[2] != tier.encode("ascii"):
                reason = "tier mismatch"
            else:
                try:
                    length = int(fields[4])
                except ValueError:
                    length = -1
                digest_ok = True
                if length == len(payload) and check_digest:
                    self.bytes_verified += len(payload)
                    digest_ok = (
                        hashlib.sha256(payload).hexdigest().encode("ascii")
                        == fields[3]
                    )
                if length != len(payload):
                    reason = f"truncated payload ({len(payload)} of {length} bytes)"
                elif not digest_ok:
                    reason = "digest mismatch"
                else:
                    try:
                        obj = pickle.loads(payload)
                    except Exception as error:  # noqa: BLE001 - any unpickling failure
                        reason = f"undecodable payload: {type(error).__name__}: {error}"
                    else:
                        if check_digest:
                            self._verified_paths.add(path)
                        return obj
        self.corrupt += 1
        logger.warning(
            "store %r: dropping corrupt entry %r (%s); it will be "
            "recomputed", self.path, path, reason,
        )
        try:
            os.unlink(path)
        except OSError:
            pass
        self._forget_entry(path)
        self._verified_paths.discard(path)
        return None

    # ------------------------------------------------------------------
    # Load / store.

    def load(self, tier: str, key: StoreKey) -> Optional[Any]:
        """Read one artifact; ``None`` on miss or (counted) corruption."""
        return self._load_one(tier, key)

    def _load_one(
        self, tier: str, key: StoreKey, now: Optional[float] = None
    ) -> Optional[Any]:
        path = self._entry_path(tier, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            self.misses += 1
            logger.warning("store %r: unreadable entry %r (%s)",
                           self.path, path, error)
            return None
        obj = self._decode(blob, tier, path,
                           check_digest=self._should_verify(path))
        if obj is None:
            self.misses += 1
            return None
        self.hits += 1
        if now is None:
            now = time.time()
        try:
            # LRU recency: a hit makes the entry young.  Explicit
            # timestamps keep the in-memory index bit-equal to the
            # on-disk mtime without a second stat.
            os.utime(path, (now, now))
        except OSError:
            pass
        else:
            if self._index is not None and path in self._index:
                self._index[path] = (now, self._index[path][1])
        return obj

    def load_many(
        self, tier: str, keys: Iterable[StoreKey]
    ) -> Dict[StoreKey, Any]:
        """Bulk read: ``{key: artifact}`` for every key found.

        One amortized pass over the batch — a single timestamp covers
        every LRU recency refresh and the whole call counts one
        ``bulk_reads`` — while per-key hit/miss/corruption accounting
        stays identical to :meth:`load`.  Missing or corrupt entries
        are simply absent from the result (corruption is still warned
        about, counted, and cleaned up per entry).
        """
        self.bulk_reads += 1
        now = time.time()
        found: Dict[StoreKey, Any] = {}
        for key in keys:
            obj = self._load_one(tier, key, now)
            if obj is not None:
                found[key] = obj
        return found

    def list_keys(self, tier: str) -> List[StoreKey]:
        """Every key currently present in ``tier``, sorted.

        The inverse of :meth:`_entry_path`: ``sm`` names decode back to
        ``(fingerprint, blocks_sampled)`` tuples, other tiers to the
        fingerprint string.  Files another build left behind that do
        not parse as entry names are skipped — they would be dropped as
        corrupt on read anyway.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown store tier {tier!r}")
        keys: List[StoreKey] = []
        root = os.path.join(self.path, tier)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(_ENTRY_SUFFIX):
                    continue
                name = filename[:-len(_ENTRY_SUFFIX)]
                if tier == SM_TIER:
                    fingerprint, _, blocks = name.rpartition("-")
                    try:
                        keys.append((fingerprint, int(blocks)))
                    except ValueError:
                        continue
                else:
                    keys.append(name)
        return sorted(keys)

    def store(self, tier: str, key: StoreKey, obj: Any) -> None:
        """Persist one artifact atomically (then enforce the size bound).

        With ``max_bytes`` set this is O(1) stats per write amortized:
        the running total absorbs the size delta of the (possibly
        replaced) entry, the LRU sweep only runs once the total passes
        the bound, and a full directory walk happens only on the
        periodic resync schedule that re-anchors the total to real
        disk usage under concurrent writers.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown store tier {tier!r}")
        blob = self._encode(tier, obj)
        path = self._entry_path(tier, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # The path's content is about to change: re-arm verification so
        # the relaxed policies hash the replacement on its first read.
        self._verified_paths.discard(path)
        with self._lock:
            if self.max_bytes is None:
                atomic_write_bytes(path, blob)
                return
            # Incremental accounting only sees *this* instance's
            # writes; a scheduled full resync (every K writes or T
            # seconds) re-anchors the total to actual disk usage so N
            # concurrent writers cannot silently grow the directory
            # toward N x max_bytes between drift recoveries.
            self._writes_since_resync += 1
            if (self._writes_since_resync >= self.resync_write_interval
                    or time.time() - self._last_resync
                    >= self.resync_seconds):
                self._resync_index()
            old_size = 0
            if self._index is not None and path in self._index:
                old_size = self._index[path][1]
            else:
                try:
                    old_size = os.stat(path).st_size
                except OSError:
                    old_size = 0
            atomic_write_bytes(path, blob)
            try:
                status = os.stat(path)
                mtime, size = status.st_mtime, status.st_size
            except OSError:
                mtime, size = time.time(), len(blob)
            if self._index is None:
                self._index = {}
            self._index[path] = (mtime, size)
            self._total_bytes += size - old_size
            if self._total_bytes > self.max_bytes:
                self._evict_lru()

    def put_entries(self, entries: Iterable[StoreEntry]) -> None:
        """Write-back a batch of artifacts (the pool parent's path)."""
        for tier, key, obj in entries:
            self.store(tier, key, obj)

    # ------------------------------------------------------------------
    # Eviction.

    def _walk_entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, size, path) for every entry file currently on disk."""
        found = []
        for tier in TIERS:
            root = os.path.join(self.path, tier)
            for dirpath, _dirnames, filenames in os.walk(root):
                for filename in filenames:
                    if not filename.endswith(_ENTRY_SUFFIX):
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        status = os.stat(path)
                    except OSError:
                        continue  # evicted or replaced concurrently
                    found.append((status.st_mtime, status.st_size, path))
        return found

    def _resync_index(self) -> None:
        """Rebuild the size-accounting index from one full walk.

        The only places a full directory walk happens on a bounded
        store: open, corruption recovery, the periodic write-count /
        wall-clock schedule (which bounds multi-writer drift), and
        eviction drift recovery (the index drained while the total
        still exceeded the bound — entries another process wrote are
        discovered here).
        """
        self._index = {
            path: (mtime, size)
            for mtime, size, path in self._walk_entries()
        }
        self._total_bytes = sum(size for _mtime, size in self._index.values())
        self._writes_since_resync = 0
        self._last_resync = time.time()

    def _forget_entry(self, path: str) -> None:
        """Drop one entry from the size accounting (it left the disk)."""
        if self._index is None:
            return
        forgotten = self._index.pop(path, None)
        if forgotten is not None:
            self._total_bytes -= forgotten[1]

    def _evict_lru(self) -> None:
        """Drop oldest entries until the store fits ``max_bytes``.

        Called with the writer lock held.  Recency is file mtime —
        refreshed on every read hit — so the sweep is LRU across every
        process sharing the store, not just this one.  The candidate
        list comes from the in-memory index (no walk); entries another
        process already unlinked are tolerated: they leave the index
        and the running total without raising and *without* counting
        toward this store's ``evictions``.
        """
        if self._index is None:
            self._resync_index()
        for resynced in (False, True):
            # Oldest first; ties broken by (size, path) — the exact
            # order the previous walk-per-write implementation used.
            for path, _meta in sorted(
                self._index.items(),
                key=lambda item: (item[1][0], item[1][1], item[0]),
            ):
                if self._total_bytes <= self.max_bytes:
                    return
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    # A concurrent evictor (or corruption cleanup in a
                    # reader) beat us to it: it is gone from disk, so
                    # it leaves the accounting, but it is not *our*
                    # eviction.
                    self._forget_entry(path)
                    continue
                except OSError:
                    continue  # unreadable/locked: skip, try the next
                self.evictions += 1
                self._forget_entry(path)
            if self._total_bytes <= self.max_bytes or resynced:
                return
            # The index drained (or went stale) while the total still
            # exceeds the bound — other processes sharing the root
            # have written entries we have never seen.  One full walk
            # resynchronizes, then a single retry pass evicts from the
            # fresh listing.
            self._resync_index()

    # ------------------------------------------------------------------
    # Introspection.

    def size_bytes(self) -> int:
        """Total bytes currently held in entry files."""
        return sum(size for _mtime, size, _path in self._walk_entries())

    def entry_count(self) -> int:
        return len(self._walk_entries())

    def counters(self) -> Dict[str, int]:
        """Telemetry snapshot under the names EngineStats mirrors."""
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_evictions": self.evictions,
            "store_corrupt": self.corrupt,
            "store_bulk_reads": self.bulk_reads,
            "store_bytes_verified": self.bytes_verified,
        }

    def __repr__(self) -> str:
        bound = "unbounded" if self.max_bytes is None else f"{self.max_bytes}B"
        return f"ResultStore({self.path!r}, {bound})"


def resolve_store(
    store: Union["ResultStore", str, None], environ=None
) -> Optional["ResultStore"]:
    """Normalize a store argument: instance, directory path, or ``None``.

    ``None`` defers to ``REPRO_STORE`` (empty/unset disables the
    store).  The size bound comes from ``REPRO_STORE_MAX_MB`` and the
    read-verification policy from ``REPRO_STORE_VERIFY``; a malformed
    value raises :class:`ValueError` naming the variable — the same
    actionable-diagnostics contract as ``resolve_workers``.
    """
    if isinstance(store, ResultStore):
        return store
    environ = os.environ if environ is None else environ
    if store is None:
        store = environ.get(STORE_ENV) or None
        if store is None:
            return None
    max_bytes = None
    bound = environ.get(STORE_MAX_MB_ENV)
    if bound and bound.strip():
        try:
            megabytes = float(bound)
        except ValueError:
            raise ValueError(
                f"{STORE_MAX_MB_ENV}={bound!r} is not a valid size "
                "(expected mebibytes as a number)"
            ) from None
        if megabytes <= 0:
            raise ValueError(
                f"{STORE_MAX_MB_ENV}={bound!r} must be positive "
                "(unset it to disable eviction)"
            )
        max_bytes = int(megabytes * 1024 * 1024)
    verify = environ.get(STORE_VERIFY_ENV)
    if verify is not None and verify.strip():
        verify = verify.strip()
        if verify not in VERIFY_POLICIES:
            raise ValueError(
                f"{STORE_VERIFY_ENV}={verify!r} is not a verification "
                f"policy (expected one of {', '.join(VERIFY_POLICIES)})"
            )
    else:
        verify = VERIFY_ALWAYS
    return ResultStore(str(store), max_bytes=max_bytes, verify=verify)


__all__ = [
    "COMPILE_TIER",
    "MAGIC",
    "RESOURCES_TIER",
    "ResultStore",
    "SCHEMA_VERSION",
    "SM_TIER",
    "STORE_ENV",
    "STORE_MAX_MB_ENV",
    "STORE_VERIFY_ENV",
    "TIERS",
    "TRACE_TIER",
    "VERIFY_POLICIES",
    "resolve_store",
]
