"""Atomic file writes that honor the process umask.

Every durable artifact in this repository — engine checkpoints, store
entries, the store's version marker — is written the same way: to a
temporary file in the destination directory, flushed, then moved over
the target with :func:`os.replace`, so readers only ever observe a
missing file or a complete one.

``tempfile.mkstemp`` deliberately creates files ``0600`` regardless of
the umask (its security contract).  That is wrong for a *published*
artifact: a checkpoint written by one user could not be resumed by a
teammate sharing the directory, and a shared result store would be
readable only by whoever happened to write each entry first.  The
helpers here re-apply the conventional ``0666 & ~umask`` mode to the
temporary file before the rename, so the final file carries the same
permissions a plain ``open(path, "w")`` would have produced.
"""

from __future__ import annotations

import os
import tempfile


def current_umask() -> int:
    """The process umask (read via the set-and-restore idiom).

    Momentarily sets the umask to 0 to read it; not atomic with
    respect to other threads calling ``os.umask`` concurrently, which
    no code in this repository does.
    """
    mask = os.umask(0)
    os.umask(mask)
    return mask


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically with umask-honoring mode.

    The temporary file lives in ``path``'s directory so the final
    :func:`os.replace` stays on one filesystem.  On any failure the
    temporary file is removed and the previous contents of ``path``
    (if any) are untouched.
    """
    path = os.path.abspath(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        os.fchmod(fd, 0o666 & ~current_umask())
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path: str, text: str) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


__all__ = ["atomic_write_bytes", "atomic_write_text", "current_umask"]
