"""Persistent, content-addressed result store (the durable cache tier).

See :mod:`repro.store.disk` for the store itself,
:mod:`repro.store.decoded` for the daemon-wide decoded-entry cache,
:mod:`repro.store.atomic` for the shared atomic-write helpers (also
used by engine checkpoints), and docs/persistent_store.md for the
schema, locking, eviction, and corruption contracts.
"""

from repro.store.atomic import atomic_write_bytes, atomic_write_text, current_umask
from repro.store.decoded import DecodedCache
from repro.store.disk import (
    COMPILE_TIER,
    RESOURCES_TIER,
    ResultStore,
    SCHEMA_VERSION,
    SM_TIER,
    STORE_ENV,
    STORE_MAX_MB_ENV,
    STORE_VERIFY_ENV,
    TIERS,
    TRACE_TIER,
    VERIFY_POLICIES,
    resolve_store,
)

__all__ = [
    "COMPILE_TIER",
    "DecodedCache",
    "RESOURCES_TIER",
    "ResultStore",
    "SCHEMA_VERSION",
    "SM_TIER",
    "STORE_ENV",
    "STORE_MAX_MB_ENV",
    "STORE_VERIFY_ENV",
    "TIERS",
    "TRACE_TIER",
    "VERIFY_POLICIES",
    "atomic_write_bytes",
    "atomic_write_text",
    "current_umask",
    "resolve_store",
]
