"""Bounded in-memory cache of *decoded* store entries.

:class:`~repro.store.disk.ResultStore` pays an open + sha256 + unpickle
for every read, even when the same process asks for the same entry
again one sweep later.  :class:`DecodedCache` sits above the store and
below the per-runtime :class:`~repro.sim.fingerprint.SimulationCache`:
one daemon-wide map keyed ``(tier, key)`` holding the already-decoded
Python objects, so repeated sweeps — and *different runtimes* reading
the same fingerprints — never re-hash or re-unpickle a payload.

Semantics:

* **bounded LRU** — at most ``max_entries`` objects; a get refreshes
  recency, inserts evict the oldest.  The bound is on entry *count*
  (decoded objects have no cheap byte size), sized so a full tuning
  space fits comfortably.
* **thread-safe** — runtimes read through it from executor threads
  while the event loop's fast lane probes it; one plain lock, O(1) ops.
* **authoritative only for presence** — a miss here falls through to
  the store; corruption/eviction handling stays the store's job.  The
  cache never outlives trust in the store: entries are inserted only
  from values the store decoded (or this process itself computed and
  persisted).

Counters (``hits`` / ``misses`` / ``evictions``) are plain attributes
surfaced by :meth:`counters` for ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

#: default entry bound: generous for tuning spaces (a full matmul
#: space is ~1k configs x 4 tiers) while keeping worst-case resident
#: decoded objects bounded
DEFAULT_MAX_ENTRIES = 4096

_MISSING = object()


class DecodedCache:
    """Daemon-wide LRU of decoded store artifacts, keyed ``(tier, key)``."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, Any], Any]" = OrderedDict()

    def get(self, tier: str, key: Any) -> Optional[Any]:
        """The decoded object, or ``None`` (a countable miss)."""
        marker = (tier, key)
        with self._lock:
            found = self._entries.get(marker, _MISSING)
            if found is _MISSING:
                self.misses += 1
                return None
            self._entries.move_to_end(marker)
            self.hits += 1
            return found

    def put(self, tier: str, key: Any, obj: Any) -> None:
        marker = (tier, key)
        with self._lock:
            self._entries[marker] = obj
            self._entries.move_to_end(marker)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> Dict[str, int]:
        return {
            "decoded_cache_hits": self.hits,
            "decoded_cache_misses": self.misses,
            "decoded_cache_evictions": self.evictions,
            "decoded_cache_entries": len(self),
        }

    def __repr__(self) -> str:
        return f"DecodedCache({len(self)}/{self.max_entries} entries)"


__all__ = ["DEFAULT_MAX_ENTRIES", "DecodedCache"]
