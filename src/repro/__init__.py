"""repro — reproduction of "Program Optimization Space Pruning for a
Multithreaded GPU" (Ryoo et al., CGO 2008).

The package is organized the way the paper's workflow is:

* ``repro.arch``   — the GeForce 8800 machine model (Tables 1-2);
* ``repro.ir``     — a CUDA-like structured kernel IR and builder;
* ``repro.ptx``    — PTX emission + static analysis (Instr, Regions);
* ``repro.cubin``  — resource estimation (registers, shared memory);
* ``repro.transforms`` — the Section 3.1 optimizations;
* ``repro.interp`` — a functional interpreter (correctness oracle);
* ``repro.sim``    — a discrete-event timing simulator (wall clock);
* ``repro.metrics``— Efficiency and Utilization (Equations 1-2);
* ``repro.tuning`` — Pareto pruning and search strategies (Section 5);
* ``repro.apps``   — MatMul, CP, SAD and MRI-FHD (Table 3);
* ``repro.harness``— regeneration of every table and figure.

Quick start::

    from repro.apps import MatMul
    from repro.tuning import pareto_search

    app = MatMul()
    result = pareto_search(
        app.space().configurations(), app.evaluate, app.simulate
    )
    print(result.best.config, result.best.seconds)
"""

from repro.arch import GEFORCE_8800_GTX, DeviceSpec, LaunchError
from repro.ir import Dim3, Kernel, KernelBuilder
from repro.metrics import MetricReport, evaluate_kernel
from repro.sim import SimConfig, SimulationResult, simulate_kernel
from repro.tuning import (
    ConfigSpace,
    Configuration,
    EngineStats,
    ExecutionEngine,
    SearchResult,
    full_exploration,
    pareto_search,
    random_search,
)

__version__ = "1.0.0"

__all__ = [
    "GEFORCE_8800_GTX",
    "ConfigSpace",
    "Configuration",
    "DeviceSpec",
    "Dim3",
    "EngineStats",
    "ExecutionEngine",
    "Kernel",
    "KernelBuilder",
    "LaunchError",
    "MetricReport",
    "SearchResult",
    "SimConfig",
    "SimulationResult",
    "evaluate_kernel",
    "full_exploration",
    "pareto_search",
    "random_search",
    "simulate_kernel",
    "__version__",
]
