"""The ``nvcc -cubin`` analogue: per-kernel resource usage report.

Section 2.3: "-cubin outputs the resource usage of GPU kernel code,
including the shared memory used per thread block and registers used
per thread ... We use the information provided by -cubin to calculate
the number of thread blocks that can simultaneously reside on each SM."
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec
from repro.arch.occupancy import LaunchError, Occupancy, blocks_per_sm
from repro.cubin.regalloc import allocate
from repro.ir.kernel import Kernel

RESERVED_REGISTERS = 2
"""Registers the runtime reserves per thread (special-register staging)."""

SHARED_MEMORY_RUNTIME_BYTES = 40
"""Per-block shared memory the runtime claims for kernel parameters.

The paper's worked example reports 2088 bytes for a kernel whose
declared tiles occupy 2048 bytes; CUDA 1.0 stored kernel arguments and
launch bookkeeping in shared memory, accounting for the difference.
"""


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """What -cubin reports for one compiled kernel configuration."""

    registers_per_thread: int
    shared_memory_per_block: int
    threads_per_block: int

    def occupancy(self, device: DeviceSpec = GEFORCE_8800_GTX) -> Occupancy:
        """B_SM and friends; raises LaunchError for invalid executables."""
        return blocks_per_sm(
            threads_per_block=self.threads_per_block,
            registers_per_thread=self.registers_per_thread,
            shared_memory_per_block=self.shared_memory_per_block,
            device=device,
        )

    def is_launchable(self, device: DeviceSpec = GEFORCE_8800_GTX) -> bool:
        try:
            self.occupancy(device)
        except LaunchError:
            return False
        return True


def cubin_info(kernel: Kernel, reschedule_seed: Optional[int] = None) -> ResourceUsage:
    """Compile-time resource usage of a kernel (registers + shared mem).

    The register count has three components: the linear-scan
    allocation of the kernel's own virtual registers, the runtime's
    reserved registers, and one double-buffer register for every value
    the runtime's scheduler keeps in flight across a barrier (see
    ``pipeline_double_buffered``) — the paper's Section 3.1/3.2
    observation that runtime scheduling inflates register usage beyond
    developer control.
    """
    from repro.cubin.liveness import pipeline_register_pressure

    allocation = allocate(kernel, reschedule_seed=reschedule_seed)
    pipelined = pipeline_register_pressure(kernel)
    return ResourceUsage(
        registers_per_thread=(
            allocation.registers_used + pipelined + RESERVED_REGISTERS
        ),
        shared_memory_per_block=(
            kernel.shared_memory_bytes + SHARED_MEMORY_RUNTIME_BYTES
        ),
        threads_per_block=kernel.threads_per_block,
    )
