"""Resource-usage estimation (the ``nvcc -cubin`` analogue)."""

from repro.cubin.liveness import (
    LiveInterval,
    LivenessInfo,
    analyze_liveness,
    live_intervals,
    max_pressure,
    pipeline_register_pressure,
)
from repro.cubin.regalloc import RegisterAllocation, allocate, linear_scan
from repro.cubin.resources import (
    RESERVED_REGISTERS,
    SHARED_MEMORY_RUNTIME_BYTES,
    ResourceUsage,
    cubin_info,
)

__all__ = [
    "RESERVED_REGISTERS",
    "SHARED_MEMORY_RUNTIME_BYTES",
    "LiveInterval",
    "LivenessInfo",
    "RegisterAllocation",
    "analyze_liveness",
    "pipeline_register_pressure",
    "ResourceUsage",
    "allocate",
    "cubin_info",
    "linear_scan",
    "live_intervals",
    "max_pressure",
]
