"""Linear-scan register allocation onto the 8800 register file.

The CUDA runtime's allocator is invisible to developers (Section 2.3:
"an uncontrollable element"); ours is deterministic so experiments are
reproducible, and a seedable perturbation hook reproduces the paper's
observation that small code changes can nudge register counts.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

from repro.cubin.liveness import LiveInterval, live_intervals, max_pressure
from repro.ir.kernel import Kernel
from repro.ir.values import VirtualRegister


@dataclasses.dataclass(frozen=True)
class RegisterAllocation:
    """Outcome of allocating one kernel's virtual registers."""

    assignment: Dict[VirtualRegister, int]
    registers_used: int

    def physical(self, register: VirtualRegister) -> int:
        return self.assignment[register]


def linear_scan(intervals: List[LiveInterval]) -> RegisterAllocation:
    """Classic linear scan; optimal for interval graphs.

    Registers are unbounded here — per-thread counts beyond the file
    size are legal; they simply make the occupancy calculation refuse
    to place any block (the paper's invalid-executable case).
    """
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    free: List[int] = []
    next_fresh = 0
    active: List[tuple] = []  # (end, physical)
    assignment: Dict[VirtualRegister, int] = {}

    for interval in ordered:
        still_active = []
        for end, physical in active:
            if end < interval.start:
                free.append(physical)
            else:
                still_active.append((end, physical))
        active = still_active
        if free:
            free.sort()
            physical = free.pop(0)
        else:
            physical = next_fresh
            next_fresh += 1
        assignment[interval.register] = physical
        active.append((interval.end, physical))

    return RegisterAllocation(assignment=assignment, registers_used=next_fresh)


def allocate(
    kernel: Kernel,
    reschedule_seed: Optional[int] = None,
) -> RegisterAllocation:
    """Allocate a kernel's registers.

    ``reschedule_seed`` models the CUDA runtime's opaque rescheduling:
    when given, interval ends are jittered by up to two positions before
    allocation, occasionally changing the register count — the paper's
    "non-uniform behavior" (Section 3.2).
    """
    intervals = live_intervals(kernel)
    if reschedule_seed is not None:
        rng = random.Random(reschedule_seed)
        intervals = [
            LiveInterval(iv.register, iv.start, iv.end + rng.randint(0, 2))
            for iv in intervals
        ]
    allocation = linear_scan(intervals)
    assert allocation.registers_used == max_pressure(intervals), (
        "linear scan must color interval graphs optimally"
    )
    return allocation
