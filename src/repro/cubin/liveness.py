"""Live-interval analysis over structured kernel IR.

Registers-per-thread is the quantity the paper reads off ``nvcc
-cubin``; we reproduce it with a classical live-interval model.  The
structured IR is linearized depth-first, each virtual register gets the
interval spanning its accesses, and intervals are widened by the loop
rules:

* a register accessed both inside and outside a loop is live through
  the entire loop (live-in or live-out of the loop), and
* a register whose first access within a loop body is a read while it
  is also written in that body is loop-carried, hence live through the
  entire loop.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.ir.instructions import Instruction
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.types import DataType
from repro.ir.values import VirtualRegister


@dataclasses.dataclass
class LiveInterval:
    """Half-open is avoided on purpose: both endpoints are occupied."""

    register: VirtualRegister
    start: int
    end: int

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start <= other.end and other.start <= self.end

    @property
    def length(self) -> int:
        return self.end - self.start + 1


@dataclasses.dataclass
class _Access:
    position: int
    is_def: bool


class _Linearizer:
    def __init__(self) -> None:
        self.position = 0
        self.accesses: Dict[VirtualRegister, List[_Access]] = {}
        self.loops: List[Tuple[int, int]] = []
        self.barrier_positions: List[int] = []

    def _touch(self, register: VirtualRegister, is_def: bool) -> None:
        self.accesses.setdefault(register, []).append(
            _Access(self.position, is_def)
        )

    def visit_body(self, body: List[Statement]) -> None:
        from repro.ir.instructions import Opcode

        for stmt in body:
            if isinstance(stmt, Instruction):
                self.position += 1
                if stmt.opcode is Opcode.BAR:
                    self.barrier_positions.append(self.position)
                for value in stmt.reads:
                    if isinstance(value, VirtualRegister):
                        self._touch(value, is_def=False)
                if stmt.dest is not None:
                    self._touch(stmt.dest, is_def=True)
            elif isinstance(stmt, ForLoop):
                self.position += 1
                start_pos = self.position
                # The counter is written at the header and read at the
                # latch on every iteration.
                self._touch(stmt.counter, is_def=True)
                for bound in (stmt.start, stmt.stop, stmt.step):
                    if isinstance(bound, VirtualRegister):
                        self._touch(bound, is_def=False)
                self.visit_body(stmt.body)
                self.position += 1
                self._touch(stmt.counter, is_def=False)
                # Dynamic bounds are re-read by the latch test.
                if isinstance(stmt.stop, VirtualRegister):
                    self._touch(stmt.stop, is_def=False)
                self.loops.append((start_pos, self.position))
            elif isinstance(stmt, If):
                self.position += 1
                if isinstance(stmt.cond, VirtualRegister):
                    self._touch(stmt.cond, is_def=False)
                self.visit_body(stmt.then_body)
                self.visit_body(stmt.else_body)


@dataclasses.dataclass
class LivenessInfo:
    """Live intervals plus the structure needed for pipelining analysis."""

    intervals: List[LiveInterval]
    loops: List[Tuple[int, int]]
    barrier_positions: List[int]
    defs_inside_loops: Dict[VirtualRegister, List[int]]


def analyze_liveness(kernel: Kernel, include_predicates: bool = False) -> LivenessInfo:
    """Compute widened live intervals for every virtual register.

    Predicate registers live in the 8800's separate predicate file and
    are excluded from the 32-bit register count unless requested.
    """
    linearizer = _Linearizer()
    linearizer.visit_body(kernel.body)

    intervals = []
    defs_inside: Dict[VirtualRegister, List[int]] = {}
    for register, accesses in linearizer.accesses.items():
        if register.dtype is DataType.PRED and not include_predicates:
            continue
        start = min(a.position for a in accesses)
        end = max(a.position for a in accesses)
        for loop_start, loop_end in linearizer.loops:
            inside = [a for a in accesses if loop_start <= a.position <= loop_end]
            if not inside:
                continue
            outside = len(inside) != len(accesses)
            carried = (not inside[0].is_def) and any(a.is_def for a in inside)
            if outside or carried:
                start = min(start, loop_start)
                end = max(end, loop_end)
        intervals.append(LiveInterval(register, start, end))
        defs_inside[register] = [a.position for a in accesses if a.is_def]
    return LivenessInfo(
        intervals=intervals,
        loops=linearizer.loops,
        barrier_positions=linearizer.barrier_positions,
        defs_inside_loops=defs_inside,
    )


def live_intervals(kernel: Kernel, include_predicates: bool = False) -> List[LiveInterval]:
    """Widened live intervals only (see analyze_liveness)."""
    return analyze_liveness(kernel, include_predicates).intervals


def pipeline_register_pressure(kernel: Kernel, global_load_dests=None) -> int:
    """Extra registers the runtime scheduler's pipelining consumes.

    The paper documents that the CUDA runtime reschedules operations to
    hide intra-thread stalls and that this "may increase register usage
    and potentially reduce the number of thread blocks on each SM"
    (Section 3.1), in ways invisible to the developer (Section 3.2).
    We model the dominant mechanism — software pipelining of
    barrier-delimited loops:

    * the runtime pipelines a loop only when there is DRAM latency to
      cover: at least one global-load result must already be in flight
      across iterations (which is exactly what the prefetching
      transformation creates);
    * pipelining requires a straight-line loop body: a nested loop
      fences the scheduler's code motion, so only barrier loops whose
      bodies are fully unrolled qualify;
    * every value written inside a qualifying loop and live across the
      whole of it must be double-buffered (current + next copy): +1
      register each;
    * the in-flight *global-load* values are pipelined one stage
      deeper to cover the DRAM latency: +2 registers each.

    Kernels without barriers (CP, SAD, MRI-FHD) are unaffected.  For
    matrix multiplication this reproduces the paper's Figure 3
    phenomenon exactly: the completely-unrolled prefetched 1x4 kernel
    holds five global values in flight, and the runtime's pipelining
    pushes it past the register file — "prefetching increased register
    usage beyond what is available, producing an invalid executable".

    ``global_load_dests`` may be passed to avoid recomputing the set of
    registers written by global loads.
    """
    from repro.ir.instructions import Opcode
    from repro.ir.statements import instructions as iter_instructions

    info = analyze_liveness(kernel)
    straight_line_barrier_loops = []
    for start, end in info.loops:
        if not any(start <= b <= end for b in info.barrier_positions):
            continue
        has_nested = any(
            other != (start, end) and start <= other[0] and other[1] <= end
            for other in info.loops
        )
        if not has_nested:
            straight_line_barrier_loops.append((start, end))
    if not straight_line_barrier_loops:
        return 0

    if global_load_dests is None:
        global_load_dests = {
            instr.dest for instr in iter_instructions(kernel.body)
            if instr.opcode is Opcode.LD and instr.is_global_access
            and instr.dest is not None
        }

    def spanning_written(interval: LiveInterval, extent) -> bool:
        loop_start, loop_end = extent
        defs = info.defs_inside_loops.get(interval.register, [])
        written_inside = any(loop_start <= d <= loop_end for d in defs)
        return written_inside and (
            interval.start <= loop_start and interval.end >= loop_end
        )

    pressure = 0
    for extent in straight_line_barrier_loops:
        spanning = [iv for iv in info.intervals if spanning_written(iv, extent)]
        in_flight_loads = [
            iv for iv in spanning if iv.register in global_load_dests
        ]
        if not in_flight_loads:
            # Nothing to pipeline: the loop's loads complete within
            # their own iteration, so the scheduler leaves it alone.
            continue
        pressure += len(spanning) + len(in_flight_loads)
    return pressure


def max_pressure(intervals: List[LiveInterval]) -> int:
    """Maximum number of simultaneously-live registers."""
    events = []
    for interval in intervals:
        events.append((interval.start, 1))
        events.append((interval.end + 1, -1))
    events.sort()
    pressure = 0
    peak = 0
    for _, delta in events:
        pressure += delta
        peak = max(peak, pressure)
    return peak
