"""Machine model of the GeForce 8800 GTX (paper Section 2, Tables 1-2)."""

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec
from repro.arch.memory import (
    SHARED_MEMORY_BANKS,
    MemoryProperties,
    MemorySpace,
    memory_properties,
)
from repro.arch.occupancy import (
    LaunchError,
    Occupancy,
    blocks_per_sm,
    check_block_validity,
    warps_per_block,
)

__all__ = [
    "GEFORCE_8800_GTX",
    "DeviceSpec",
    "LaunchError",
    "MemoryProperties",
    "MemorySpace",
    "Occupancy",
    "SHARED_MEMORY_BANKS",
    "blocks_per_sm",
    "check_block_validity",
    "memory_properties",
    "warps_per_block",
]
