"""Machine description of the NVIDIA GeForce 8800 GTX.

Values come from Tables 1 and 2 of Ryoo et al. (CGO 2008) and from the
architecture discussion in Section 2.1 of the paper.  The machine model
is expressed as a frozen dataclass so alternative devices (or ablated
variants of the 8800) can be described without touching the rest of the
library.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Static description of a CUDA-capable device.

    The defaults describe the GeForce 8800 GTX exactly as characterized
    in the paper: 16 SMs of 8 SPs at 1.35 GHz, 388.8 GFLOP/s peak,
    86.4 GB/s of global-memory bandwidth, and the per-SM resource limits
    of Table 2.
    """

    name: str = "GeForce 8800 GTX"

    # Compute organization (Section 2.1).
    num_sms: int = 16
    sps_per_sm: int = 8
    sfus_per_sm: int = 2
    clock_ghz: float = 1.35
    warp_size: int = 32

    # Per-SM resource limits (Table 2).
    max_threads_per_sm: int = 768
    max_blocks_per_sm: int = 8
    registers_per_sm: int = 8192
    shared_memory_per_sm: int = 16384
    max_threads_per_block: int = 512

    # Memory system (Table 1 / Section 2.1).
    global_memory_bytes: int = 768 * 1024 * 1024
    global_memory_bandwidth_gbps: float = 86.4
    global_latency_cycles: int = 250          # "200-300 cycles"
    constant_cache_per_sm: int = 8 * 1024
    constant_memory_bytes: int = 64 * 1024
    texture_cache_per_two_sms: int = 16 * 1024
    texture_latency_cycles: int = 120         # ">100 cycles"

    # Issue model: a warp of 32 threads issues over four cycles on the
    # eight SPs of an SM (Section 2.1).
    warp_issue_cycles: int = 4

    @property
    def peak_gflops(self) -> float:
        """Peak theoretical GFLOP/s.

        16 SM * 18 FLOP/SM/cycle * 1.35 GHz = 388.8 for the 8800 GTX
        (each SP does a multiply-add = 2 FLOPs, each SFU counts 1).
        """
        flops_per_sm = self.sps_per_sm * 2 + self.sfus_per_sm
        return self.num_sms * flops_per_sm * self.clock_ghz

    @property
    def bytes_per_cycle(self) -> float:
        """Global-memory bytes deliverable per GPU clock cycle."""
        return self.global_memory_bandwidth_gbps / self.clock_ghz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into seconds at the device clock."""
        return cycles / (self.clock_ghz * 1e9)


GEFORCE_8800_GTX = DeviceSpec()
"""The device studied throughout the paper."""
