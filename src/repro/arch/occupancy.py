"""Occupancy calculation: how many thread blocks fit on one SM.

Section 2.2 of the paper explains that the CUDA runtime assigns the
maximum number of thread blocks to each SM, up to eight, without
violating any local resource limit.  ``B_SM`` in Equation 2 is exactly
this number, computed from the ``-cubin`` resource usage.  This module
reproduces that calculation and the hard launch-validity rules whose
violation produces the paper's "invalid executable" configurations
(e.g. the far-right prefetch point of Figure 3).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec


class LaunchError(ValueError):
    """A kernel configuration that cannot execute on the device.

    Raised when a thread block exceeds a hard per-block limit or when
    even a single block does not fit on an SM — the analogue of nvcc
    producing an invalid executable.
    """


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    threads_per_block: int
    warps_per_block: int
    limiting_resource: str

    @property
    def threads_per_sm(self) -> int:
        return self.blocks_per_sm * self.threads_per_block

    @property
    def warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block


def warps_per_block(threads_per_block: int, device: DeviceSpec = GEFORCE_8800_GTX) -> int:
    """W_TB of Equation 2: threads per block divided by 32, rounded up."""
    return math.ceil(threads_per_block / device.warp_size)


def check_block_validity(
    threads_per_block: int,
    registers_per_thread: int,
    shared_memory_per_block: int,
    device: DeviceSpec = GEFORCE_8800_GTX,
) -> Optional[str]:
    """Return a reason string if a single block cannot run, else None."""
    if threads_per_block < 1:
        return "thread block must contain at least one thread"
    if threads_per_block > device.max_threads_per_block:
        return (
            f"{threads_per_block} threads per block exceeds the "
            f"{device.max_threads_per_block}-thread limit"
        )
    if registers_per_thread * threads_per_block > device.registers_per_sm:
        return (
            f"{registers_per_thread} registers/thread x {threads_per_block} "
            f"threads exceeds the {device.registers_per_sm}-register file"
        )
    if shared_memory_per_block > device.shared_memory_per_sm:
        return (
            f"{shared_memory_per_block} bytes of shared memory exceeds the "
            f"{device.shared_memory_per_sm}-byte scratchpad"
        )
    return None


def blocks_per_sm(
    threads_per_block: int,
    registers_per_thread: int,
    shared_memory_per_block: int,
    device: DeviceSpec = GEFORCE_8800_GTX,
) -> Occupancy:
    """Compute B_SM, the number of resident thread blocks per SM.

    Reproduces the Section 2.2 worked example: 256 threads/block,
    10 registers/thread and 4KB of shared memory yield 3 blocks; one
    extra register per thread drops that to 2 because a third block
    would need 8448 > 8192 registers.

    Raises LaunchError if not even one block fits.
    """
    reason = check_block_validity(
        threads_per_block, registers_per_thread, shared_memory_per_block, device
    )
    if reason is not None:
        raise LaunchError(reason)

    limits = {
        "threads": device.max_threads_per_sm // threads_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    if registers_per_thread > 0:
        limits["registers"] = device.registers_per_sm // (
            registers_per_thread * threads_per_block
        )
    if shared_memory_per_block > 0:
        limits["shared_memory"] = (
            device.shared_memory_per_sm // shared_memory_per_block
        )

    limiting_resource = min(limits, key=lambda name: (limits[name], name))
    count = limits[limiting_resource]
    if count < 1:
        # check_block_validity guarantees one block fits in the register
        # file and shared memory, so the only way to get here is a block
        # bigger than max_threads_per_sm, which the threads limit catches.
        raise LaunchError(
            f"no thread block fits on an SM (limited by {limiting_resource})"
        )
    return Occupancy(
        blocks_per_sm=count,
        threads_per_block=threads_per_block,
        warps_per_block=warps_per_block(threads_per_block, device),
        limiting_resource=limiting_resource,
    )
