"""Properties of the GeForce 8800 memory spaces (Table 1 of the paper)."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec


class MemorySpace(enum.Enum):
    """The addressable memory spaces of the CUDA programming model."""

    GLOBAL = "global"
    SHARED = "shared"
    CONSTANT = "constant"
    TEXTURE = "texture"
    LOCAL = "local"
    # Register file: not addressable, but a useful uniform destination
    # for latency queries.
    REGISTER = "register"

    @property
    def is_on_chip(self) -> bool:
        return self in (MemorySpace.SHARED, MemorySpace.CONSTANT,
                        MemorySpace.TEXTURE, MemorySpace.REGISTER)

    @property
    def is_read_only(self) -> bool:
        return self in (MemorySpace.CONSTANT, MemorySpace.TEXTURE)


@dataclasses.dataclass(frozen=True)
class MemoryProperties:
    """Latency and behavioural description of one memory space."""

    space: MemorySpace
    latency_cycles: int
    read_only: bool
    description: str


def memory_properties(device: DeviceSpec = GEFORCE_8800_GTX) -> Dict[MemorySpace, MemoryProperties]:
    """Table 1 as a mapping from memory space to its properties.

    Register-like latencies are modeled as 0 extra cycles beyond issue;
    local memory shares the global DRAM path (it backs register spills).
    """
    return {
        MemorySpace.GLOBAL: MemoryProperties(
            MemorySpace.GLOBAL, device.global_latency_cycles, False,
            "off-chip DRAM; coalesced when threads access contiguous words"),
        MemorySpace.SHARED: MemoryProperties(
            MemorySpace.SHARED, 0, False,
            "16KB per-SM scratchpad, 16 banks, ~register latency"),
        MemorySpace.CONSTANT: MemoryProperties(
            MemorySpace.CONSTANT, 0, True,
            "8KB per-SM cache over 64KB constant space; single-ported"),
        MemorySpace.TEXTURE: MemoryProperties(
            MemorySpace.TEXTURE, device.texture_latency_cycles, True,
            "16KB cache per two SMs; 2D locality"),
        MemorySpace.LOCAL: MemoryProperties(
            MemorySpace.LOCAL, device.global_latency_cycles, False,
            "register-spill space in off-chip DRAM"),
        MemorySpace.REGISTER: MemoryProperties(
            MemorySpace.REGISTER, 0, False, "per-thread register file"),
    }


SHARED_MEMORY_BANKS = 16
"""Number of shared-memory banks on the 8800 (Table 1)."""
