"""Section 4's by-hand PTX accounting, automated over listing text.

The paper's authors counted dynamic instructions and Regions by
reading ``-ptx`` output and multiplying loop bodies by annotated trip
counts.  This module does the same computation on a parsed listing —
no IR access — which both recreates their workflow faithfully and
cross-checks the IR-level analysis: for every kernel the text-derived
``Instr`` and ``Regions`` must equal ``repro.ptx.analysis``'s numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.ptx.parse import PtxInstruction, PtxListing

_BLOCKING_LOAD_SPACES = {"global", "local", "texture"}
_SFU_OPCODES = {"rcp", "sqrt", "rsqrt", "sin", "cos", "ex2", "lg2"}


@dataclasses.dataclass(frozen=True)
class _Loop:
    """One textual loop: [start, end] instruction indices and trips."""

    start: int          # first body instruction (the label's position)
    end: int            # the backward bra
    init: int           # the init mov before the label
    trips: int


class AccountingError(ValueError):
    """The listing is not in the emitter's structured shape."""


def _find_loops(listing: PtxListing) -> List[_Loop]:
    loops = []
    for branch, target in listing.back_edges():
        init = target - 1
        if init < 0:
            raise AccountingError("back edge with no loop header")
        header = listing.instructions[init]
        if header.comment is None or "trips=" not in header.comment:
            raise AccountingError(
                f"loop at instruction {target} lacks a trips annotation"
            )
        trips = int(header.comment.split("trips=")[1].split()[0])
        loops.append(_Loop(start=target, end=branch, init=init, trips=trips))
    # Properly nested by construction; sort outermost-first.
    return sorted(loops, key=lambda l: (l.start, -l.end))


def _check_nesting(loops: List[_Loop]) -> None:
    for i, outer in enumerate(loops):
        for inner in loops[i + 1:]:
            disjoint = inner.start > outer.end or inner.end < outer.start
            nested = inner.start >= outer.start and inner.end <= outer.end
            if not (disjoint or nested):
                raise AccountingError("loops overlap without nesting")


def text_instruction_count(listing: PtxListing) -> float:
    """Dynamic instructions per thread, from text alone.

    Counts every instruction except the final ``exit``; loop bodies
    multiply by their annotated trip counts.  Guarded forward branches
    (``@p bra``) are counted like any other instruction, matching the
    IR analysis's taken-fraction of 1 only for unconditional kernels —
    kernels with data-dependent conditionals need the IR analysis.
    """
    loops = _find_loops(listing)
    _check_nesting(loops)
    multiplier = [1.0] * len(listing.instructions)
    for loop in loops:
        for index in range(loop.start, loop.end + 1):
            multiplier[index] *= loop.trips
    total = 0.0
    for index, instr in enumerate(listing.instructions):
        if instr.opcode == "exit":
            continue
        total += multiplier[index]
    return total


def _expand(listing: PtxListing, loops: List[_Loop]):
    """Yield the dynamic instruction stream of one thread.

    Loops are dispatched at their *init* instruction (the annotated
    mov before the label), so body walks never re-trigger their own
    loop.
    """
    by_init: Dict[int, _Loop] = {l.init: l for l in loops}

    def walk(start: int, end: int):
        index = start
        while index <= end:
            loop = by_init.get(index)
            if loop is not None and loop.end <= end:
                yield listing.instructions[index]      # the init mov
                for _ in range(loop.trips):
                    yield from walk(loop.start, loop.end)
                index = loop.end + 1
                continue
            yield listing.instructions[index]
            index += 1

    yield from walk(0, len(listing.instructions) - 1)


def text_region_count(listing: PtxListing) -> int:
    """Regions per thread from text: blocking events + 1.

    Reproduces the Section 4 rules on the textual stream: barriers and
    long-latency loads block; consecutive independent long-latency
    loads form one unit (a unit closes when an instruction reads one of
    its destination registers); SFU instructions block only when the
    kernel has no longer-latency load at all.
    """
    loops = _find_loops(listing)
    _check_nesting(loops)
    sfu_blocks = not any(
        instr.opcode == "ld" and instr.space in _BLOCKING_LOAD_SPACES
        for instr in listing.instructions
    )
    events = 0
    open_group: Set[str] = set()

    def reads_of(instr: PtxInstruction) -> Tuple[str, ...]:
        if instr.opcode in ("st",):
            return instr.operands
        if instr.opcode in ("bra", "bar", "exit"):
            return ()
        return instr.operands[1:]

    def dest_of(instr: PtxInstruction) -> Optional[str]:
        if instr.opcode in ("st", "bra", "bar", "exit"):
            return None
        return instr.operands[0] if instr.operands else None

    for instr in _expand(listing, loops):
        if instr.opcode == "exit":
            continue
        reads_pending = any(
            any(register in operand for register in open_group)
            for operand in reads_of(instr)
        )
        if instr.opcode == "ld" and instr.space in _BLOCKING_LOAD_SPACES:
            if reads_pending:
                open_group.clear()
            if not open_group:
                events += 1
            destination = dest_of(instr)
            if destination:
                open_group.add(destination)
            continue
        if reads_pending:
            open_group.clear()
        if instr.opcode == "bar":
            open_group.clear()
            events += 1
        elif sfu_blocks and instr.opcode in _SFU_OPCODES:
            events += 1
    return events + 1
