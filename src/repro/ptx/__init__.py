"""PTX-level view of kernels: emission and static execution analysis."""

from repro.ptx.analysis import (
    ControlOp,
    ExecutionProfile,
    MemoryTraffic,
    count_instructions,
    count_regions,
    expand_dynamic,
    kernel_has_longer_latency_than_sfu,
    memory_traffic,
    profile_kernel,
)
from repro.ptx.accounting import (
    AccountingError,
    text_instruction_count,
    text_region_count,
)
from repro.ptx.affine import (
    AccessReport,
    Affine,
    analyze_memory_access,
    annotation_mismatches,
    bank_conflict_ways,
    is_coalesced,
)
from repro.ptx.emit import emit_ptx
from repro.ptx.parse import PtxInstruction, PtxListing, PtxParseError, parse_ptx
from repro.ptx.isa import BLOCKING_CLASSES, InstrClass, classify, mnemonic

__all__ = [
    "AccessReport",
    "AccountingError",
    "Affine",
    "BLOCKING_CLASSES",
    "analyze_memory_access",
    "annotation_mismatches",
    "bank_conflict_ways",
    "is_coalesced",
    "ControlOp",
    "ExecutionProfile",
    "InstrClass",
    "PtxInstruction",
    "PtxListing",
    "PtxParseError",
    "MemoryTraffic",
    "classify",
    "count_instructions",
    "count_regions",
    "emit_ptx",
    "expand_dynamic",
    "kernel_has_longer_latency_than_sfu",
    "memory_traffic",
    "mnemonic",
    "parse_ptx",
    "text_instruction_count",
    "text_region_count",
    "profile_kernel",
]
