"""Parsing of the PTX-style text emitted by :mod:`repro.ptx.emit`.

The paper's workflow reads ``-ptx`` listings to count instructions and
annotate loops by hand.  This parser supports that workflow in
reverse: given a PTX listing (ours, or an edited one), it produces a
structured listing — instruction records, labels, branch targets — on
which the same static accounting can be done without the original IR.
It is deliberately a *listing* parser, not a full PTX front end: it
recovers what Section 4 extracts (opcodes, spaces, operands, loop
structure via back edges), which is all the methodology consumes.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple


class PtxParseError(ValueError):
    """The listing does not look like emitted PTX."""


@dataclasses.dataclass(frozen=True)
class PtxInstruction:
    """One parsed instruction line."""

    opcode: str                     # e.g. "mad" of "mad.s32"
    suffixes: Tuple[str, ...]       # e.g. ("s32",) or ("global", "f32")
    operands: Tuple[str, ...]
    predicate: Optional[str] = None   # guard register, None if unguarded
    comment: Optional[str] = None

    @property
    def is_memory(self) -> bool:
        return self.opcode in ("ld", "st")

    @property
    def space(self) -> Optional[str]:
        if self.is_memory and self.suffixes:
            return self.suffixes[0]
        return None

    @property
    def is_branch(self) -> bool:
        return self.opcode == "bra"

    @property
    def is_barrier(self) -> bool:
        return self.opcode == "bar"


@dataclasses.dataclass(frozen=True)
class PtxListing:
    """A parsed kernel listing."""

    name: str
    params: Tuple[str, ...]
    shared_declarations: Tuple[Tuple[str, int], ...]   # (name, bytes)
    instructions: Tuple[PtxInstruction, ...]
    labels: Dict[str, int]          # label -> instruction index it precedes

    def count(self, opcode: str) -> int:
        return sum(1 for i in self.instructions if i.opcode == opcode)

    def back_edges(self) -> List[Tuple[int, int]]:
        """(branch_index, target_index) pairs that jump backwards —
        one per loop in structured code."""
        edges = []
        for index, instr in enumerate(self.instructions):
            if instr.is_branch and instr.operands:
                target = self.labels.get(instr.operands[0])
                if target is not None and target <= index:
                    edges.append((index, target))
        return edges

    def loop_annotations(self) -> List[int]:
        """Trip counts recovered from '// trips=N' comments."""
        trips = []
        for instr in self.instructions:
            if instr.comment:
                match = re.search(r"trips=(\d+)", instr.comment)
                if match:
                    trips.append(int(match.group(1)))
        return trips


_ENTRY = re.compile(r"^\.entry\s+(\w+)\s*\((.*)\)\s*$")
_SHARED = re.compile(r"^\.shared\s+\.align\s+\d+\s+\.b8\s+(\w+)\[(\d+)\];$")
_LABEL = re.compile(r"^(\$\w+):$")
_PARAM = re.compile(r"\.param\s+\.\w+\s+(\w+)")
_GUARD = re.compile(r"^@(!?%[\w.$]+)\s+(.*)$")


def parse_ptx(text: str) -> PtxListing:
    """Parse one emitted kernel listing."""
    name = None
    params: List[str] = []
    shared: List[Tuple[str, int]] = []
    instructions: List[PtxInstruction] = []
    labels: Dict[str, int] = {}

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line in ("{", "}"):
            continue
        entry = _ENTRY.match(line)
        if entry:
            if name is not None:
                raise PtxParseError("multiple .entry directives")
            name = entry.group(1)
            params = _PARAM.findall(entry.group(2))
            continue
        shared_match = _SHARED.match(line)
        if shared_match:
            shared.append((shared_match.group(1), int(shared_match.group(2))))
            continue
        label = _LABEL.match(line)
        if label:
            labels[label.group(1)] = len(instructions)
            continue
        instructions.append(_parse_instruction(line))

    if name is None:
        raise PtxParseError("no .entry directive found")
    return PtxListing(
        name=name,
        params=tuple(params),
        shared_declarations=tuple(shared),
        instructions=tuple(instructions),
        labels=labels,
    )


def _parse_instruction(line: str) -> PtxInstruction:
    comment = None
    if "//" in line:
        line, comment = line.split("//", 1)
        line = line.strip()
        comment = comment.strip()
    predicate = None
    guard = _GUARD.match(line)
    if guard:
        predicate = guard.group(1)
        line = guard.group(2).strip()
    if not line.endswith(";"):
        raise PtxParseError(f"missing ';' in {line!r}")
    line = line[:-1].strip()

    head, _, tail = line.partition(" ")
    parts = head.split(".")
    opcode = parts[0]
    suffixes = tuple(parts[1:])
    if opcode == "bar":             # bar.sync carries no operands
        return PtxInstruction("bar", suffixes, (), predicate, comment)
    operands = tuple(
        op.strip() for op in tail.replace("\t", " ").split(",") if op.strip()
    ) if tail else ()
    return PtxInstruction(opcode, suffixes, operands, predicate, comment)
