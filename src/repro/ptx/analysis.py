"""Static execution analysis of kernel IR (the paper's Section 4 inputs).

Three quantities feed the performance metrics:

* ``Instr`` — dynamic instructions per thread, computed by weighting
  loop bodies with their (annotated or static) trip counts, exactly as
  the paper does by hand on ``-ptx`` output.
* ``Regions`` — the number of dynamic instruction intervals delimited
  by blocking instructions or kernel entry/exit.  Blocking instructions
  are barriers and long-latency loads; *sequences of independent
  long-latency loads count as a single unit*; SFU instructions count as
  long-latency only when no longer-latency operation exists in the
  kernel.
* the instruction mix and per-thread global-memory traffic, used by the
  bandwidth-boundedness screen and the timing simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Set, Tuple, Union

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import VirtualRegister
from repro.ptx.isa import BLOCKING_CLASSES, InstrClass, classify

MAX_EXPANDED_INSTRUCTIONS = 5_000_000
"""Safety cap on dynamic expansion (guards bad trip annotations)."""


class ControlOp:
    """A synthetic loop/branch overhead instruction (PTX add/setp/bra)."""

    __slots__ = ("kind",)

    def __init__(self, kind: str) -> None:
        self.kind = kind

    def __repr__(self) -> str:
        return f"ControlOp({self.kind})"


LOOP_INIT = ControlOp("loop.init")
LOOP_STEP = ControlOp("loop.step")
LOOP_TEST = ControlOp("loop.test")
LOOP_BRANCH = ControlOp("loop.branch")
IF_BRANCH = ControlOp("if.branch")

LOOP_OVERHEAD_PER_TRIP = 3   # add + setp + bra
LOOP_OVERHEAD_SETUP = 1      # init mov

DynamicOp = Union[Instruction, ControlOp]


# ----------------------------------------------------------------------
# Instr and mix (weighted recursion; no expansion).

def _count_body(body: List[Statement], mix: Dict[InstrClass, float], weight: float) -> float:
    total = 0.0
    for stmt in body:
        if isinstance(stmt, Instruction):
            total += 1.0
            mix[classify(stmt)] = mix.get(classify(stmt), 0.0) + weight
        elif isinstance(stmt, ForLoop):
            trips = stmt.annotated_trips
            total += LOOP_OVERHEAD_SETUP
            mix[InstrClass.CONTROL] = mix.get(InstrClass.CONTROL, 0.0) + weight * (
                LOOP_OVERHEAD_SETUP + trips * LOOP_OVERHEAD_PER_TRIP
            )
            inner = _count_body(stmt.body, mix, weight * trips)
            total += trips * (inner + LOOP_OVERHEAD_PER_TRIP)
        elif isinstance(stmt, If):
            frac = stmt.taken_fraction
            mix[InstrClass.CONTROL] = mix.get(InstrClass.CONTROL, 0.0) + weight
            total += 1.0  # guarding branch
            then_count = _count_body(stmt.then_body, mix, weight * frac)
            else_count = _count_body(stmt.else_body, mix, weight * (1.0 - frac))
            total += frac * then_count + (1.0 - frac) * else_count
            if stmt.else_body:
                # then-side ends with a jump over the else-side.
                total += frac
                mix[InstrClass.CONTROL] = mix.get(InstrClass.CONTROL, 0.0) + weight * frac
    return total


def count_instructions(kernel: Kernel) -> Tuple[float, Dict[InstrClass, float]]:
    """Per-thread dynamic instruction count and mix.

    The mix maps each class to its dynamic count per thread; loop and
    branch overhead lands in ``InstrClass.CONTROL``.
    """
    mix: Dict[InstrClass, float] = {}
    total = _count_body_weighted(kernel.body, mix)
    return total, mix


def _count_body_weighted(body: List[Statement], mix: Dict[InstrClass, float]) -> float:
    return _count_body(body, mix, 1.0)


# ----------------------------------------------------------------------
# Dynamic expansion (drives Regions and the simulator trace).

def expand_dynamic(kernel: Kernel) -> Iterator[DynamicOp]:
    """Yield the per-thread dynamic instruction stream.

    Loops are expanded by their trip counts; conditionals follow the
    warp-level rule — a fully-biased branch executes one side, anything
    in between is divergent and serializes both sides.
    """
    budget = [MAX_EXPANDED_INSTRUCTIONS]
    yield from _expand_body(kernel.body, budget)


def _expand_body(body: List[Statement], budget: List[int]) -> Iterator[DynamicOp]:
    for stmt in body:
        budget[0] -= 1
        if budget[0] <= 0:
            raise OverflowError(
                "dynamic expansion exceeds "
                f"{MAX_EXPANDED_INSTRUCTIONS} instructions; check trip counts"
            )
        if isinstance(stmt, Instruction):
            yield stmt
        elif isinstance(stmt, ForLoop):
            trips = stmt.annotated_trips
            yield LOOP_INIT
            for _ in range(trips):
                yield from _expand_body(stmt.body, budget)
                yield LOOP_STEP
                yield LOOP_TEST
                yield LOOP_BRANCH
        elif isinstance(stmt, If):
            yield IF_BRANCH
            if stmt.taken_fraction >= 1.0:
                yield from _expand_body(stmt.then_body, budget)
            elif stmt.taken_fraction <= 0.0:
                yield from _expand_body(stmt.else_body, budget)
            else:
                yield from _expand_body(stmt.then_body, budget)
                yield from _expand_body(stmt.else_body, budget)


# ----------------------------------------------------------------------
# Regions.

def kernel_has_longer_latency_than_sfu(kernel: Kernel) -> bool:
    """True when any global/texture/local access exists (Section 4 rule)."""
    from repro.ir.statements import instructions as iter_instructions

    return any(instr.is_long_latency for instr in iter_instructions(kernel.body))


class _RegionCounter:
    """State machine implementing the Section 4 region rules."""

    def __init__(self, sfu_blocks: bool) -> None:
        self.sfu_blocks = sfu_blocks
        self.events = 0
        self._open_group: Set[VirtualRegister] = set()

    def snapshot(self) -> frozenset:
        """The state that determines all future transitions."""
        return frozenset(self._open_group)

    def feed(self, op: DynamicOp) -> None:
        if isinstance(op, ControlOp):
            return
        cls = classify(op)
        reads_pending = any(
            isinstance(v, VirtualRegister) and v in self._open_group
            for v in op.reads
        )
        if cls in BLOCKING_CLASSES and cls is not InstrClass.BARRIER:
            # A long-latency load: merge into the open group if it is
            # independent of everything already in flight.
            if reads_pending:
                self._close_group()
            if not self._open_group:
                self.events += 1
            self._open_group.add(op.dest)
            return
        if reads_pending:
            self._close_group()
        if cls is InstrClass.BARRIER:
            self._close_group()
            self.events += 1
        elif cls is InstrClass.SFU and self.sfu_blocks:
            self.events += 1

    def _close_group(self) -> None:
        self._open_group.clear()

    @property
    def regions(self) -> int:
        return self.events + 1


def _expanded_visits(body: List[Statement]) -> int:
    """Statement visits :func:`expand_dynamic` would perform on ``body``.

    Mirrors the budget accounting of ``_expand_body`` exactly (one
    decrement per statement visit, loop bodies multiplied by their trip
    counts, conditionals following the warp-level expansion rule), so
    the fast region counter can reproduce the reference path's
    safety-cap behaviour without enumerating anything.
    """
    total = 0
    for stmt in body:
        total += 1
        if isinstance(stmt, ForLoop):
            total += stmt.annotated_trips * _expanded_visits(stmt.body)
        elif isinstance(stmt, If):
            if stmt.taken_fraction >= 1.0:
                total += _expanded_visits(stmt.then_body)
            elif stmt.taken_fraction <= 0.0:
                total += _expanded_visits(stmt.else_body)
            else:
                total += _expanded_visits(stmt.then_body)
                total += _expanded_visits(stmt.else_body)
    return total


def _feed_statements(body: List[Statement], counter: _RegionCounter) -> None:
    for stmt in body:
        if isinstance(stmt, Instruction):
            counter.feed(stmt)
        elif isinstance(stmt, ForLoop):
            _feed_loop(stmt, counter)
        elif isinstance(stmt, If):
            if stmt.taken_fraction >= 1.0:
                _feed_statements(stmt.then_body, counter)
            elif stmt.taken_fraction <= 0.0:
                _feed_statements(stmt.else_body, counter)
            else:
                _feed_statements(stmt.then_body, counter)
                _feed_statements(stmt.else_body, counter)


def _feed_loop(loop: ForLoop, counter: _RegionCounter) -> None:
    """Feed a loop's iterations with exact cycle extrapolation.

    The counter's only state is the set of in-flight load destinations,
    and its transition over one iteration is a deterministic function of
    that set.  States are drawn from a finite universe, so the sequence
    of iteration-entry states must cycle; once a state recurs, every
    later iteration repeats the cycle's event delta exactly.  We replay
    iterations until a state recurs, add ``whole_cycles x delta`` in one
    step, and replay the (shorter-than-a-cycle) tail concretely — the
    result is bit-identical to feeding the expanded stream, not an
    approximation (pinned against :func:`count_regions_reference`).
    """
    trips = loop.annotated_trips
    seen: Dict[frozenset, Tuple[int, int]] = {}
    iteration = 0
    while iteration < trips:
        state = counter.snapshot()
        known = seen.get(state)
        if known is not None:
            first_iteration, events_then = known
            period = iteration - first_iteration
            per_cycle = counter.events - events_then
            whole_cycles = (trips - iteration) // period
            counter.events += whole_cycles * per_cycle
            iteration += whole_cycles * period
            # A whole number of cycles returns to this exact state, so
            # the tail (shorter than one cycle) replays concretely.
            for _ in range(trips - iteration):
                _feed_statements(loop.body, counter)
            return
        seen[state] = (iteration, counter.events)
        _feed_statements(loop.body, counter)
        iteration += 1


def count_regions(kernel: Kernel) -> int:
    """``Regions`` of Equation 2 for one kernel configuration.

    Loop-compressed: instead of expanding every iteration (the dominant
    cost of the static stage — unrolled matmul kernels expand to ~10k
    dynamic instructions each), the region state machine detects when a
    loop's iteration-entry state recurs and extrapolates the remaining
    iterations arithmetically.  Bit-identical to the naive expansion,
    including the :data:`MAX_EXPANDED_INSTRUCTIONS` safety cap.
    """
    if _expanded_visits(kernel.body) >= MAX_EXPANDED_INSTRUCTIONS:
        raise OverflowError(
            "dynamic expansion exceeds "
            f"{MAX_EXPANDED_INSTRUCTIONS} instructions; check trip counts"
        )
    counter = _RegionCounter(sfu_blocks=not kernel_has_longer_latency_than_sfu(kernel))
    _feed_statements(kernel.body, counter)
    return counter.regions


def count_regions_reference(kernel: Kernel) -> int:
    """The straightforward ``Regions`` computation: feed the fully
    expanded dynamic stream through the state machine, one instruction
    at a time.  Kept as the differential-testing oracle (and the
    reference pipeline of the static benchmark) for
    :func:`count_regions`."""
    counter = _RegionCounter(sfu_blocks=not kernel_has_longer_latency_than_sfu(kernel))
    for op in expand_dynamic(kernel):
        counter.feed(op)
    return counter.regions


# ----------------------------------------------------------------------
# Memory traffic.

@dataclasses.dataclass(frozen=True)
class MemoryTraffic:
    """Per-thread global-memory traffic summary."""

    load_bytes: float
    store_bytes: float
    uncoalesced_load_bytes: float
    uncoalesced_store_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.load_bytes + self.store_bytes


def _traffic_body(body: List[Statement], weight: float, acc: Dict[str, float]) -> None:
    for stmt in body:
        if isinstance(stmt, Instruction):
            if stmt.mem is None or not stmt.is_global_access:
                continue
            size = float(stmt.mem.dtype.size_bytes) * weight
            if stmt.opcode is Opcode.LD:
                acc["load"] += size
                if not stmt.coalesced:
                    acc["uload"] += size
            else:
                acc["store"] += size
                if not stmt.coalesced:
                    acc["ustore"] += size
        elif isinstance(stmt, ForLoop):
            _traffic_body(stmt.body, weight * stmt.annotated_trips, acc)
        elif isinstance(stmt, If):
            _traffic_body(stmt.then_body, weight * stmt.taken_fraction, acc)
            _traffic_body(stmt.else_body, weight * (1.0 - stmt.taken_fraction), acc)


def memory_traffic(kernel: Kernel) -> MemoryTraffic:
    """Bytes of global/local traffic one thread generates."""
    acc = {"load": 0.0, "store": 0.0, "uload": 0.0, "ustore": 0.0}
    _traffic_body(kernel.body, 1.0, acc)
    return MemoryTraffic(
        load_bytes=acc["load"],
        store_bytes=acc["store"],
        uncoalesced_load_bytes=acc["uload"],
        uncoalesced_store_bytes=acc["ustore"],
    )


# ----------------------------------------------------------------------
# Aggregate profile.

@dataclasses.dataclass(frozen=True)
class ExecutionProfile:
    """Everything the metrics need to know about one configuration."""

    instructions: float
    regions: int
    mix: Dict[InstrClass, float]
    traffic: MemoryTraffic

    @property
    def instructions_per_region(self) -> float:
        return self.instructions / self.regions


def profile_kernel(kernel: Kernel) -> ExecutionProfile:
    """Run the full static analysis on one kernel."""
    instructions, mix = count_instructions(kernel)
    return ExecutionProfile(
        instructions=instructions,
        regions=count_regions(kernel),
        mix=mix,
        traffic=memory_traffic(kernel),
    )
