"""Mapping from kernel IR onto PTX-style mnemonics and cost classes.

PTX is the assembly-like representation nvcc emits with ``-ptx``
(Section 2.3 of the paper).  The analyses only need instruction
identity, mix and blocking structure, so the ISA layer is a naming and
classification table rather than a full assembler.
"""

from __future__ import annotations

import enum

from repro.arch.memory import MemorySpace
from repro.ir.instructions import Instruction, Opcode


class InstrClass(enum.Enum):
    """Cost/mix classes used by the analyses and the timing simulator."""

    ALU = "alu"
    SFU = "sfu"
    GLOBAL_LOAD = "global_load"
    GLOBAL_STORE = "global_store"
    TEXTURE_LOAD = "texture_load"
    CONST_LOAD = "const_load"
    SHARED_LOAD = "shared_load"
    SHARED_STORE = "shared_store"
    LOCAL_LOAD = "local_load"
    LOCAL_STORE = "local_store"
    BARRIER = "barrier"
    CONTROL = "control"      # loop/branch overhead instructions


_LOAD_CLASS = {
    MemorySpace.GLOBAL: InstrClass.GLOBAL_LOAD,
    MemorySpace.TEXTURE: InstrClass.TEXTURE_LOAD,
    MemorySpace.CONSTANT: InstrClass.CONST_LOAD,
    MemorySpace.SHARED: InstrClass.SHARED_LOAD,
    MemorySpace.LOCAL: InstrClass.LOCAL_LOAD,
}

_STORE_CLASS = {
    MemorySpace.GLOBAL: InstrClass.GLOBAL_STORE,
    MemorySpace.SHARED: InstrClass.SHARED_STORE,
    MemorySpace.LOCAL: InstrClass.LOCAL_STORE,
}


def classify(instr: Instruction) -> InstrClass:
    """Assign the cost class of one IR instruction."""
    if instr.opcode is Opcode.BAR:
        return InstrClass.BARRIER
    if instr.opcode is Opcode.LD:
        return _LOAD_CLASS[instr.mem.space]
    if instr.opcode is Opcode.ST:
        return _STORE_CLASS[instr.mem.space]
    if instr.opcode.is_sfu:
        return InstrClass.SFU
    return InstrClass.ALU


def mnemonic(instr: Instruction) -> str:
    """PTX-style mnemonic with space and type suffixes."""
    op = instr.opcode
    if op is Opcode.BAR:
        return "bar.sync"
    if op in (Opcode.LD, Opcode.ST):
        space = instr.mem.space.value
        return f"{op.value}.{space}.{instr.mem.dtype}"
    if op is Opcode.SETP:
        dtype = instr.srcs[0].dtype if hasattr(instr.srcs[0], "dtype") else "s32"
        return f"setp.{instr.cmp}.{dtype}"
    if instr.dest is not None:
        return f"{op.value}.{instr.dest.dtype}"
    return op.value


BLOCKING_CLASSES = frozenset(
    {InstrClass.GLOBAL_LOAD, InstrClass.TEXTURE_LOAD, InstrClass.LOCAL_LOAD,
     InstrClass.BARRIER}
)
"""Classes treated as blocking for Region analysis (Section 4).

Global, texture and local loads are long-latency; barriers block until
the whole thread block arrives.  Stores retire into the memory system
without blocking the issuing warp.  SFU instructions are long-latency
only when no longer-latency operation is present in the kernel — the
analysis handles that special case itself.
"""
