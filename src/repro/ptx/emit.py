"""Textual PTX-style emission (the ``nvcc -ptx`` analogue).

Structured loops and conditionals are lowered to labels, compares and
branches exactly as they appear in PTX listings, so the emitted text
shows the same loop overhead the static analysis charges.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ptx.isa import mnemonic


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._label = 0

    def fresh_label(self, hint: str) -> str:
        self._label += 1
        return f"${hint}_{self._label}"

    def emit(self, text: str, indent: int = 1) -> None:
        self.lines.append("\t" * indent + text)

    def body(self, statements: List[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, Instruction):
                self.instruction(stmt)
            elif isinstance(stmt, ForLoop):
                self.loop(stmt)
            elif isinstance(stmt, If):
                self.branch(stmt)

    def instruction(self, instr: Instruction) -> None:
        operands = []
        if instr.dest is not None:
            operands.append(str(instr.dest))
        if instr.opcode is Opcode.LD:
            operands.append(f"[{instr.mem}]")
        operands.extend(str(s) for s in instr.srcs)
        if instr.opcode is Opcode.ST:
            operands.insert(0, f"[{instr.mem}]")
        text = mnemonic(instr)
        if operands:
            text = f"{text} \t{', '.join(operands)};"
        else:
            text = f"{text};"
        self.emit(text)

    def loop(self, stmt: ForLoop) -> None:
        head = self.fresh_label("Lt")
        counter = stmt.counter
        trips = f" // trips={stmt.trip_count}" if stmt.trip_count is not None else ""
        self.emit(f"mov.s32 \t{counter}, {stmt.start};{trips}")
        self.emit(f"{head}:", indent=0)
        self.body(stmt.body)
        self.emit(f"add.s32 \t{counter}, {counter}, {stmt.step};")
        self.emit(f"setp.lt.s32 \t%p_{head[1:]}, {counter}, {stmt.stop};")
        self.emit(f"@%p_{head[1:]} bra \t{head};")

    def branch(self, stmt: If) -> None:
        skip = self.fresh_label("Lif")
        done = self.fresh_label("Lend")
        self.emit(f"@!{stmt.cond} bra \t{skip};")
        self.body(stmt.then_body)
        if stmt.else_body:
            self.emit(f"bra \t{done};")
        self.emit(f"{skip}:", indent=0)
        if stmt.else_body:
            self.body(stmt.else_body)
            self.emit(f"{done}:", indent=0)


def emit_ptx(kernel: Kernel) -> str:
    """Render a kernel in PTX-flavoured text."""
    emitter = _Emitter()
    params = ", ".join(
        f".param .{'u64' if p.is_pointer else p.dtype} {p.name}"
        for p in kernel.params
    )
    emitter.emit(f".entry {kernel.name} ({params})", indent=0)
    emitter.emit("{", indent=0)
    for array in kernel.shared_arrays:
        emitter.emit(
            f".shared .align 4 .b8 {array.name}[{array.size_bytes}];"
        )
    emitter.body(kernel.body)
    emitter.emit("exit;")
    emitter.emit("}", indent=0)
    return "\n".join(emitter.lines)
