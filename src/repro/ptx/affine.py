"""Affine lane analysis: infer coalescing and bank behaviour statically.

The paper hand-reasons about which accesses coalesce ("Used more
efficiently when multiple threads simultaneously access contiguous
elements", Table 1) and notes that accounting for coalescing in the
metrics is future work (Section 7).  This module derives those facts
from the IR instead of trusting annotations: every memory index is
symbolically evaluated as an affine function

    index(thread) = base + dx * tid.x + dy * tid.y

where ``base`` is warp-uniform (block coordinates, loop counters,
immediates, scalar params).  From (dx, dy) and the block shape the
G80's half-warp rules follow:

* a global access *coalesces* when the 16 threads of a half-warp touch
  16 consecutive elements;
* a shared access is *conflict-free* when the half-warp's element
  indices hit 16 distinct banks (stride coprime to 16), or when every
  thread reads the same address (broadcast).

Anything non-affine (data-dependent indices, division of a varying
value) is conservatively unknown.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.arch.memory import MemorySpace, SHARED_MEMORY_BANKS
from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import (
    Immediate,
    Param,
    SpecialRegister,
    Value,
    VirtualRegister,
)

HALF_WARP = 16


@dataclasses.dataclass(frozen=True)
class Affine:
    """index = base(uniform) + dx * tid.x + dy * tid.y.

    ``constant`` is the known part of the uniform base, or None when
    the base is uniform but unknown (e.g. involves ctaid or a loop
    counter).
    """

    dx: int
    dy: int
    constant: Optional[int] = None

    @property
    def is_lane_uniform(self) -> bool:
        return self.dx == 0 and self.dy == 0


UNIFORM = Affine(0, 0, None)


def _combine_linear(a: "Affine", b: "Affine", sign: int) -> Optional[Affine]:
    constant = None
    if a.constant is not None and b.constant is not None:
        constant = a.constant + sign * b.constant
    return Affine(a.dx + sign * b.dx, a.dy + sign * b.dy, constant)


class _AffineEvaluator:
    """Symbolic evaluation over the kernel's def chains."""

    def __init__(self, kernel: Kernel) -> None:
        self._defs: Dict[VirtualRegister, List[Instruction]] = {}
        self._counters: set = set()
        self._collect(kernel.body)
        self._cache: Dict[VirtualRegister, Optional[Affine]] = {}

    def _collect(self, body: List[Statement]) -> None:
        for stmt in body:
            if isinstance(stmt, Instruction):
                if stmt.dest is not None:
                    self._defs.setdefault(stmt.dest, []).append(stmt)
            elif isinstance(stmt, ForLoop):
                self._counters.add(stmt.counter)
                self._collect(stmt.body)
            elif isinstance(stmt, If):
                self._collect(stmt.then_body)
                self._collect(stmt.else_body)

    # ------------------------------------------------------------------

    def value(self, operand: Value) -> Optional[Affine]:
        if isinstance(operand, Immediate):
            if isinstance(operand.value, int):
                return Affine(0, 0, operand.value)
            return None
        if isinstance(operand, SpecialRegister):
            if operand is SpecialRegister.TID_X:
                return Affine(1, 0, 0)
            if operand is SpecialRegister.TID_Y:
                return Affine(0, 1, 0)
            if operand is SpecialRegister.TID_Z:
                return None     # three-dimensional blocks: give up
            return UNIFORM      # block ids and dims are warp-uniform
        if isinstance(operand, Param):
            return UNIFORM if not operand.is_pointer else None
        if isinstance(operand, VirtualRegister):
            return self.register(operand)
        return None

    def register(self, register: VirtualRegister) -> Optional[Affine]:
        if register in self._cache:
            return self._cache[register]
        self._cache[register] = None      # cut cycles conservatively
        if register in self._counters:
            result: Optional[Affine] = UNIFORM
        else:
            definitions = self._defs.get(register, [])
            base_defs = []
            updated = False
            for definition in definitions:
                if self._is_uniform_self_update(register, definition):
                    # Induction update r = r +/- uniform: preserves the
                    # lane coefficients, invalidates the constant.
                    updated = True
                else:
                    base_defs.append(definition)
            if not base_defs:
                result = None
            else:
                shapes = [self._instruction(d) for d in base_defs]
                result = self._merge(shapes)
                if result is not None and updated:
                    result = Affine(result.dx, result.dy, None)
        self._cache[register] = result
        return result

    def _is_uniform_self_update(
        self, register: VirtualRegister, definition: Instruction
    ) -> bool:
        if definition.opcode not in (Opcode.ADD, Opcode.SUB):
            return False
        if register not in definition.srcs:
            return False
        other = [s for s in definition.srcs if s != register]
        if len(other) != 1:
            return False
        shape = self.value(other[0])
        return shape is not None and shape.is_lane_uniform

    @staticmethod
    def _merge(shapes: List[Optional[Affine]]) -> Optional[Affine]:
        """Multiple definitions agree if their lane coefficients do."""
        if any(s is None for s in shapes):
            return None
        first = shapes[0]
        if all(s.dx == first.dx and s.dy == first.dy for s in shapes):
            constant = first.constant if len(shapes) == 1 else None
            return Affine(first.dx, first.dy, constant)
        return None

    def _instruction(self, instr: Instruction) -> Optional[Affine]:
        opcode = instr.opcode
        if opcode is Opcode.MOV:
            return self.value(instr.srcs[0])
        if opcode in (Opcode.ADD, Opcode.SUB):
            a = self.value(instr.srcs[0])
            b = self.value(instr.srcs[1])
            if a is None or b is None:
                return None
            return _combine_linear(a, b, 1 if opcode is Opcode.ADD else -1)
        if opcode is Opcode.MUL:
            return self._product(instr.srcs[0], instr.srcs[1])
        if opcode is Opcode.MAD:
            product = self._product(instr.srcs[0], instr.srcs[1])
            addend = self.value(instr.srcs[2])
            if product is None or addend is None:
                return None
            return _combine_linear(product, addend, 1)
        if opcode is Opcode.SHL:
            amount = instr.srcs[1]
            base = self.value(instr.srcs[0])
            if base is None or not isinstance(amount, Immediate):
                return None
            factor = 1 << int(amount.value)
            return Affine(
                base.dx * factor, base.dy * factor,
                None if base.constant is None else base.constant * factor,
            )
        if opcode is Opcode.CVT:
            return self.value(instr.srcs[0])
        if opcode in (Opcode.DIV, Opcode.REM, Opcode.SHR, Opcode.AND,
                      Opcode.OR, Opcode.XOR, Opcode.MIN, Opcode.MAX):
            # Uniform op uniform stays uniform; anything varying is no
            # longer affine after these.
            operands = [self.value(s) for s in instr.srcs]
            if all(o is not None and o.is_lane_uniform for o in operands):
                return UNIFORM
            return None
        if opcode is Opcode.LD:
            return None         # data-dependent
        return None

    def _product(self, left: Value, right: Value) -> Optional[Affine]:
        a = self.value(left)
        b = self.value(right)
        if a is None or b is None:
            return None
        for varying, const in ((a, b), (b, a)):
            if const.is_lane_uniform and const.constant is not None:
                factor = const.constant
                return Affine(
                    varying.dx * factor, varying.dy * factor,
                    None if varying.constant is None
                    else varying.constant * factor,
                )
        if a.is_lane_uniform and b.is_lane_uniform:
            return UNIFORM
        return None


# ----------------------------------------------------------------------
# Half-warp judgments.


def _half_warp_offsets(shape: Affine, block_x: int) -> Optional[List[int]]:
    """Element offsets of one half-warp's threads, relative to lane 0.

    Lanes are assigned x-fastest; a half-warp covers 16 consecutive
    linear thread ids.
    """
    if block_x <= 0:
        return None
    offsets = []
    for lane in range(HALF_WARP):
        x = lane % block_x
        y = lane // block_x
        offsets.append(shape.dx * x + shape.dy * y)
    return offsets


def is_coalesced(shape: Affine, block_x: int) -> bool:
    """Do the 16 half-warp threads touch 16 consecutive elements?"""
    offsets = _half_warp_offsets(shape, block_x)
    if offsets is None:
        return False
    return sorted(offsets) == list(range(HALF_WARP))


def bank_conflict_ways(shape: Affine, block_x: int) -> int:
    """Serialization factor of a half-warp's shared access.

    A bank serves one *address* per cycle, broadcast to every thread
    requesting it; serialization happens when threads need distinct
    addresses living in the same bank.  The factor is therefore the
    maximum number of distinct addresses mapped to one bank.
    """
    offsets = _half_warp_offsets(shape, block_x)
    if offsets is None:
        return HALF_WARP
    banks: Dict[int, set] = {}
    for offset in offsets:
        banks.setdefault(offset % SHARED_MEMORY_BANKS, set()).add(offset)
    return max(len(addresses) for addresses in banks.values())


# ----------------------------------------------------------------------
# Kernel-level reports.


@dataclasses.dataclass(frozen=True)
class AccessReport:
    """Inferred behaviour of one memory instruction."""

    instruction: Instruction
    position: int                     # walk order
    shape: Optional[Affine]
    coalesced: Optional[bool]         # None: not a DRAM access / unknown
    bank_ways: Optional[int]          # None: not a shared access / unknown


def analyze_memory_access(kernel: Kernel) -> List[AccessReport]:
    """Infer coalescing / bank behaviour for every memory instruction."""
    evaluator = _AffineEvaluator(kernel)
    block_x = kernel.block_dim.x
    reports: List[AccessReport] = []

    def visit(body: List[Statement]) -> None:
        for stmt in body:
            if isinstance(stmt, Instruction):
                if stmt.mem is None:
                    continue
                shape = evaluator.value(stmt.mem.index)
                coalesced = None
                bank_ways = None
                space = stmt.mem.space
                if space is MemorySpace.GLOBAL:
                    coalesced = (
                        None if shape is None
                        else is_coalesced(shape, block_x)
                    )
                elif space is MemorySpace.LOCAL:
                    # Local memory is thread-interleaved by the
                    # hardware: a lane-uniform slot index lands on
                    # consecutive DRAM words across the half-warp.
                    coalesced = (
                        None if shape is None else shape.is_lane_uniform
                    )
                elif space is MemorySpace.SHARED:
                    bank_ways = (
                        None if shape is None
                        else bank_conflict_ways(shape, block_x)
                    )
                reports.append(AccessReport(
                    instruction=stmt, position=len(reports),
                    shape=shape, coalesced=coalesced, bank_ways=bank_ways,
                ))
            elif isinstance(stmt, ForLoop):
                visit(stmt.body)
            elif isinstance(stmt, If):
                visit(stmt.then_body)
                visit(stmt.else_body)

    visit(kernel.body)
    return reports


def annotation_mismatches(kernel: Kernel) -> List[AccessReport]:
    """Global accesses whose hand annotation contradicts the analysis.

    Unknown (non-affine) shapes are not reported — the annotation is
    the only information available there.
    """
    return [
        report for report in analyze_memory_access(kernel)
        if report.coalesced is not None
        and report.coalesced != report.instruction.coalesced
    ]
