"""Scalar data types of the kernel IR.

The GeForce 8800 is a 32-bit machine: every register is 32 bits wide
and the SP datapath handles single-precision floats and 32-bit integers
(Section 2.1).  Predicates occupy a register in our model, matching the
PTX convention of allocating predicate registers separately but keeping
the resource arithmetic simple.
"""

from __future__ import annotations

import enum


class DataType(enum.Enum):
    """A 32-bit scalar type, or a predicate."""

    F32 = "f32"
    S32 = "s32"
    U32 = "u32"
    PRED = "pred"

    @property
    def size_bytes(self) -> int:
        """Storage footprint of one element in memory."""
        if self is DataType.PRED:
            return 1
        return 4

    @property
    def is_float(self) -> bool:
        return self is DataType.F32

    @property
    def is_integer(self) -> bool:
        return self in (DataType.S32, DataType.U32)

    def __str__(self) -> str:
        return self.value


class CmpOp(enum.Enum):
    """Comparison operators for ``setp`` instructions."""

    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"

    def __str__(self) -> str:
        return self.value
