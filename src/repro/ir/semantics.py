"""Scalar evaluation semantics shared by the interpreter and the
constant folder.

All arithmetic follows the 8800's 32-bit datapath: f32 results are
rounded to single precision via numpy, integer results wrap modulo
2^32 with s32/u32 interpretation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

import numpy as np

from repro.ir.instructions import Opcode
from repro.ir.types import CmpOp, DataType

Scalar = Union[int, float, bool]

_U32_MASK = 0xFFFFFFFF


def _wrap_s32(value: int) -> int:
    value &= _U32_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


def _wrap_u32(value: int) -> int:
    return value & _U32_MASK


def _f32(value: float) -> float:
    return float(np.float32(value))


def coerce_scalar(value: Scalar, dtype: DataType) -> Scalar:
    """Clamp a Python number into a dtype's representable domain."""
    if dtype is DataType.F32:
        return _f32(float(value))
    if dtype is DataType.S32:
        return _wrap_s32(int(value))
    if dtype is DataType.U32:
        return _wrap_u32(int(value))
    return bool(value)


_CMP: Dict[CmpOp, Callable[[Scalar, Scalar], bool]] = {
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}


def eval_compare(cmp: CmpOp, a: Scalar, b: Scalar) -> bool:
    return _CMP[cmp](a, b)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer division by zero in kernel")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


def eval_op(
    opcode: Opcode,
    dtype: DataType,
    args: tuple,
    cmp: CmpOp = None,
) -> Scalar:
    """Evaluate one register-to-register operation.

    ``dtype`` is the destination type; ``args`` are already-evaluated
    operand scalars.  SETP takes ``cmp``.  SELP receives
    (pred, a, b).
    """
    if opcode is Opcode.MOV:
        return coerce_scalar(args[0], dtype)
    if opcode is Opcode.ADD:
        return coerce_scalar(args[0] + args[1], dtype)
    if opcode is Opcode.SUB:
        return coerce_scalar(args[0] - args[1], dtype)
    if opcode is Opcode.MUL:
        return coerce_scalar(args[0] * args[1], dtype)
    if opcode is Opcode.MAD:
        if dtype is DataType.F32:
            return _f32(_f32(args[0] * args[1]) + args[2])
        return coerce_scalar(args[0] * args[1] + args[2], dtype)
    if opcode is Opcode.DIV:
        if dtype is DataType.F32:
            return _f32(args[0] / args[1])
        return coerce_scalar(_int_div(int(args[0]), int(args[1])), dtype)
    if opcode is Opcode.REM:
        return coerce_scalar(_int_rem(int(args[0]), int(args[1])), dtype)
    if opcode is Opcode.MIN:
        return coerce_scalar(min(args[0], args[1]), dtype)
    if opcode is Opcode.MAX:
        return coerce_scalar(max(args[0], args[1]), dtype)
    if opcode is Opcode.ABS:
        return coerce_scalar(abs(args[0]), dtype)
    if opcode is Opcode.NEG:
        return coerce_scalar(-args[0], dtype)
    if opcode is Opcode.AND:
        return coerce_scalar(int(args[0]) & int(args[1]), dtype)
    if opcode is Opcode.OR:
        return coerce_scalar(int(args[0]) | int(args[1]), dtype)
    if opcode is Opcode.XOR:
        return coerce_scalar(int(args[0]) ^ int(args[1]), dtype)
    if opcode is Opcode.SHL:
        return coerce_scalar(int(args[0]) << (int(args[1]) & 31), dtype)
    if opcode is Opcode.SHR:
        return coerce_scalar(int(args[0]) >> (int(args[1]) & 31), dtype)
    if opcode is Opcode.CVT:
        if dtype is DataType.F32:
            return _f32(float(args[0]))
        return coerce_scalar(int(args[0]), dtype)
    if opcode is Opcode.SETP:
        return eval_compare(cmp, args[0], args[1])
    if opcode is Opcode.SELP:
        return coerce_scalar(args[1] if args[0] else args[2], dtype)
    if opcode is Opcode.RCP:
        return _f32(1.0 / args[0])
    if opcode is Opcode.SQRT:
        return _f32(math.sqrt(args[0]))
    if opcode is Opcode.RSQRT:
        return _f32(1.0 / math.sqrt(args[0]))
    if opcode is Opcode.SIN:
        return _f32(math.sin(args[0]))
    if opcode is Opcode.COS:
        return _f32(math.cos(args[0]))
    if opcode is Opcode.EX2:
        return _f32(2.0 ** args[0])
    if opcode is Opcode.LG2:
        return _f32(math.log2(args[0]))
    raise NotImplementedError(f"no scalar semantics for {opcode}")
