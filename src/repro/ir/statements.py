"""Structured control flow of the kernel IR.

Kernels are structured programs: flat instruction sequences, counted
``for`` loops and two-sided conditionals.  Keeping control flow
structured (instead of a branch-level CFG) is what makes the paper's
workflow natural to reproduce — loop trip counts can be annotated
directly on loops (Section 4: "We manually annotate the average
iteration counts of the major loops"), and the unrolling / prefetching
transformations of Section 3.1 become simple tree rewrites.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Union

from repro.ir.instructions import Instruction
from repro.ir.types import DataType
from repro.ir.values import Immediate, Value, VirtualRegister

Statement = Union[Instruction, "ForLoop", "If"]


@dataclasses.dataclass
class ForLoop:
    """A counted loop: ``for (counter = start; counter < stop; counter += step)``.

    ``trip_count`` is the analysis annotation; when start/stop/step are
    all immediates it is computed automatically.  The counter register
    is defined by the loop and updated by its implicit increment (the
    increment and the loop-back branch each cost one issued instruction,
    which the PTX analysis accounts for).
    """

    counter: VirtualRegister
    start: Value
    stop: Value
    step: Value
    body: List[Statement] = dataclasses.field(default_factory=list)
    trip_count: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.counter.dtype is not DataType.S32:
            raise TypeError(f"loop counter {self.counter} must be s32")
        static = self.static_trip_count()
        if static is not None:
            if self.trip_count is not None and self.trip_count != static:
                raise ValueError(
                    f"annotated trip count {self.trip_count} contradicts the "
                    f"static bounds ({static} iterations)"
                )
            self.trip_count = static

    def static_trip_count(self) -> Optional[int]:
        """Trip count when all bounds are immediates, else None."""
        bounds = (self.start, self.stop, self.step)
        if not all(isinstance(b, Immediate) for b in bounds):
            return None
        start, stop, step = (int(b.value) for b in bounds)
        if step <= 0:
            raise ValueError(f"loop step must be positive, got {step}")
        if stop <= start:
            return 0
        return -(-(stop - start) // step)

    @property
    def annotated_trips(self) -> int:
        """Trip count for static analysis; requires an annotation."""
        if self.trip_count is None:
            raise ValueError(
                f"loop over {self.counter} has dynamic bounds and no "
                f"trip_count annotation"
            )
        return self.trip_count


@dataclasses.dataclass
class If:
    """A two-sided conditional on a predicate register.

    ``taken_fraction`` annotates the expected fraction of executions
    that take the then-side; the static instruction-count analysis
    weights the two sides by it, mirroring how the paper's manual PTX
    accounting treats data-dependent branches.
    """

    cond: Value
    then_body: List[Statement] = dataclasses.field(default_factory=list)
    else_body: List[Statement] = dataclasses.field(default_factory=list)
    taken_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.taken_fraction <= 1.0:
            raise ValueError("taken_fraction must lie in [0, 1]")


def walk(body: List[Statement]) -> Iterator[Statement]:
    """Yield every statement in a body, depth-first, including nests."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ForLoop):
            yield from walk(stmt.body)
        elif isinstance(stmt, If):
            yield from walk(stmt.then_body)
            yield from walk(stmt.else_body)


def instructions(body: List[Statement]) -> Iterator[Instruction]:
    """Yield every Instruction in a body, depth-first."""
    for stmt in walk(body):
        if isinstance(stmt, Instruction):
            yield stmt
