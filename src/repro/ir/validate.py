"""Structural and type validation of kernel IR.

The verifier enforces the invariants the downstream analyses rely on:
every virtual register is defined before (lexically) it is read, every
Param/SharedArray operand belongs to the kernel, operand types agree,
and memory indices are integers.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.types import DataType
from repro.ir.values import (
    Immediate,
    LocalArray,
    Param,
    SharedArray,
    SpecialRegister,
    Value,
    VirtualRegister,
    value_dtype,
)


class ValidationError(ValueError):
    """The kernel violates an IR invariant."""


class _Verifier:
    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.params = set(kernel.params)
        self.shared = set(kernel.shared_arrays)
        self.local = set(kernel.local_arrays)
        self.defined: Set[VirtualRegister] = set()
        self.errors: List[str] = []

    def run(self) -> None:
        self._check_body(self.kernel.body)
        if self.errors:
            raise ValidationError(
                f"kernel {self.kernel.name!r}: " + "; ".join(self.errors)
            )

    def _check_body(self, body: List[Statement]) -> None:
        for stmt in body:
            if isinstance(stmt, Instruction):
                self._check_instruction(stmt)
            elif isinstance(stmt, ForLoop):
                self._check_value(stmt.start, "loop start")
                self._check_value(stmt.stop, "loop stop")
                self._check_value(stmt.step, "loop step")
                for bound in (stmt.start, stmt.stop, stmt.step):
                    if not value_dtype(bound).is_integer and not isinstance(
                        bound, VirtualRegister
                    ):
                        self.errors.append(f"loop bound {bound} is not integer")
                self.defined.add(stmt.counter)
                self._check_body(stmt.body)
            elif isinstance(stmt, If):
                self._check_value(stmt.cond, "if condition")
                if value_dtype(stmt.cond) is not DataType.PRED:
                    self.errors.append(f"if condition {stmt.cond} is not a predicate")
                self._check_body(stmt.then_body)
                self._check_body(stmt.else_body)
            else:
                self.errors.append(f"unknown statement {stmt!r}")

    def _check_value(self, value: Value, context: str) -> None:
        if isinstance(value, VirtualRegister):
            if value not in self.defined:
                self.errors.append(f"{context}: {value} read before definition")
        elif isinstance(value, Param):
            if value not in self.params:
                self.errors.append(f"{context}: foreign parameter {value.name}")
            if value.is_pointer:
                self.errors.append(
                    f"{context}: pointer {value.name} used as a scalar operand"
                )
        elif not isinstance(value, (Immediate, SpecialRegister)):
            self.errors.append(f"{context}: bad operand {value!r}")

    def _check_instruction(self, instr: Instruction) -> None:
        where = str(instr)
        for src in instr.srcs:
            self._check_value(src, where)
        if instr.mem is not None:
            self._check_value(instr.mem.index, f"{where} (index)")
            if not value_dtype(instr.mem.index).is_integer:
                self.errors.append(f"{where}: memory index must be integer")
            base = instr.mem.base
            if isinstance(base, SharedArray):
                if base not in self.shared:
                    self.errors.append(f"{where}: foreign shared array {base.name}")
            elif isinstance(base, LocalArray):
                if base not in self.local:
                    self.errors.append(f"{where}: foreign local array {base.name}")
            elif isinstance(base, Param):
                if base not in self.params:
                    self.errors.append(f"{where}: foreign parameter {base.name}")
                if not base.is_pointer:
                    self.errors.append(f"{where}: scalar {base.name} dereferenced")
            else:
                self.errors.append(f"{where}: bad memory base {base!r}")
        self._check_types(instr, where)
        if instr.dest is not None:
            self.defined.add(instr.dest)

    def _check_types(self, instr: Instruction, where: str) -> None:
        if instr.opcode is Opcode.SETP:
            a, b = (value_dtype(s) for s in instr.srcs)
            if a is not b:
                self.errors.append(f"{where}: comparing {a} with {b}")
        elif instr.opcode is Opcode.SELP:
            if value_dtype(instr.srcs[0]) is not DataType.PRED:
                self.errors.append(f"{where}: selp selector must be a predicate")
            if value_dtype(instr.srcs[1]) is not value_dtype(instr.srcs[2]):
                self.errors.append(f"{where}: selp arms differ in type")
        elif instr.opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MAD,
                              Opcode.DIV, Opcode.REM, Opcode.MIN, Opcode.MAX):
            kinds = {value_dtype(s).is_float for s in instr.srcs}
            if len(kinds) > 1:
                self.errors.append(f"{where}: mixed int/float operands")
        elif instr.opcode in (Opcode.AND, Opcode.OR, Opcode.XOR,
                              Opcode.SHL, Opcode.SHR):
            for src in instr.srcs:
                dtype = value_dtype(src)
                if not (dtype.is_integer or dtype is DataType.PRED):
                    self.errors.append(f"{where}: bitwise op on {dtype}")
        if instr.opcode is Opcode.LD and instr.dest is not None:
            if instr.dest.dtype is not instr.mem.dtype:
                self.errors.append(
                    f"{where}: loading {instr.mem.dtype} into "
                    f"{instr.dest.dtype} register"
                )


def validate(kernel: Kernel) -> None:
    """Raise ValidationError if the kernel violates an IR invariant."""
    _Verifier(kernel).run()
