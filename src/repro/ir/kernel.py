"""Kernel container: signature, launch geometry, shared arrays, body."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec
from repro.ir.statements import Statement
from repro.ir.values import LocalArray, Param, SharedArray


@dataclasses.dataclass(frozen=True)
class Dim3:
    """A CUDA launch dimension triple."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"dimensions must be positive, got {self}")

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"


@dataclasses.dataclass
class Kernel:
    """A data-parallel kernel function.

    The grid/block geometry is part of the kernel object because on the
    8800 the launch configuration is an optimization parameter in its
    own right — the paper's configuration spaces vary threads per block
    alongside code transformations.
    """

    name: str
    params: List[Param]
    block_dim: Dim3
    grid_dim: Dim3
    shared_arrays: List[SharedArray] = dataclasses.field(default_factory=list)
    local_arrays: List[LocalArray] = dataclasses.field(default_factory=list)
    body: List[Statement] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        names = (
            [p.name for p in self.params]
            + [a.name for a in self.shared_arrays]
            + [a.name for a in self.local_arrays]
        )
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate parameter/array names: {sorted(duplicates)}")

    @property
    def threads_per_block(self) -> int:
        return self.block_dim.count

    @property
    def num_blocks(self) -> int:
        return self.grid_dim.count

    @property
    def total_threads(self) -> int:
        """`Threads` of Equation 1: all threads launched by the grid."""
        return self.threads_per_block * self.num_blocks

    @property
    def shared_memory_bytes(self) -> int:
        """Declared shared-memory footprint per thread block."""
        return sum(a.size_bytes for a in self.shared_arrays)

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name} has no parameter {name!r}")

    def shared(self, name: str) -> SharedArray:
        for a in self.shared_arrays:
            if a.name == name:
                return a
        raise KeyError(f"kernel {self.name} has no shared array {name!r}")

    def check_launch(self, device: DeviceSpec = GEFORCE_8800_GTX) -> None:
        """Raise if the block geometry violates hard device limits."""
        if self.threads_per_block > device.max_threads_per_block:
            raise ValueError(
                f"{self.threads_per_block} threads/block exceeds the "
                f"{device.max_threads_per_block} limit"
            )
        if self.shared_memory_bytes > device.shared_memory_per_sm:
            raise ValueError(
                f"{self.shared_memory_bytes}B shared memory exceeds the "
                f"{device.shared_memory_per_sm}B scratchpad"
            )


LaunchGeometry = Tuple[Dim3, Dim3]


def flatten_thread_index(tid: Tuple[int, int, int], block_dim: Dim3) -> int:
    """CUDA's linear thread id within a block (x fastest)."""
    x, y, z = tid
    return x + block_dim.x * (y + block_dim.y * z)


def warp_assignment(block_dim: Dim3, warp_size: int = 32) -> Dict[int, int]:
    """Map linear thread id -> warp id for one block."""
    return {t: t // warp_size for t in range(block_dim.count)}
