"""Human-readable dump of kernel IR (CUDA-flavoured pseudocode)."""

from __future__ import annotations

from typing import List

from repro.ir.instructions import Instruction
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement

_INDENT = "  "


def _format_body(body: List[Statement], depth: int, lines: List[str]) -> None:
    pad = _INDENT * depth
    for stmt in body:
        if isinstance(stmt, Instruction):
            lines.append(f"{pad}{stmt}")
        elif isinstance(stmt, ForLoop):
            trips = f"  // trips={stmt.trip_count}" if stmt.trip_count is not None else ""
            lines.append(
                f"{pad}for ({stmt.counter} = {stmt.start}; "
                f"{stmt.counter} < {stmt.stop}; {stmt.counter} += {stmt.step})"
                f" {{{trips}"
            )
            _format_body(stmt.body, depth + 1, lines)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({stmt.cond}) {{")
            _format_body(stmt.then_body, depth + 1, lines)
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                _format_body(stmt.else_body, depth + 1, lines)
            lines.append(f"{pad}}}")


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel as indented pseudocode."""
    params = ", ".join(str(p) for p in kernel.params)
    lines = [
        f"__global__ void {kernel.name}({params})",
        f"{_INDENT}// grid={kernel.grid_dim} block={kernel.block_dim}",
    ]
    for array in kernel.shared_arrays:
        lines.append(f"{_INDENT}{array}")
    lines.append("{")
    _format_body(kernel.body, 1, lines)
    lines.append("}")
    return "\n".join(lines)
