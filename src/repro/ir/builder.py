"""Fluent construction of kernel IR.

``KernelBuilder`` is the authoring API used by the application kernel
generators: it creates fresh virtual registers, coerces Python numbers
to immediates, infers result types, and manages the statement stack for
structured loops and conditionals.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Tuple, Union

from repro.arch.memory import MemorySpace
from repro.ir.instructions import Instruction, MemRef, Opcode
from repro.ir.kernel import Dim3, Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.types import CmpOp, DataType
from repro.ir.values import (
    Immediate,
    LocalArray,
    Param,
    SharedArray,
    SpecialRegister,
    Value,
    VirtualRegister,
    value_dtype,
)

Operand = Union[Value, int, float]


class KernelBuilder:
    """Builds a ``Kernel`` one statement at a time."""

    def __init__(self, name: str, block_dim: Dim3, grid_dim: Dim3) -> None:
        self._kernel = Kernel(
            name=name, params=[], block_dim=block_dim, grid_dim=grid_dim
        )
        self._body_stack: List[List[Statement]] = [self._kernel.body]
        self._counter = 0

    # ------------------------------------------------------------------
    # Declarations.

    def param_ptr(
        self,
        name: str,
        dtype: DataType,
        space: MemorySpace = MemorySpace.GLOBAL,
    ) -> Param:
        """Declare a pointer parameter (global/constant/texture array)."""
        param = Param(name, dtype, is_pointer=True, space=space)
        self._kernel.params.append(param)
        return param

    def param_scalar(self, name: str, dtype: DataType) -> Param:
        """Declare a by-value scalar parameter."""
        param = Param(name, dtype, is_pointer=False)
        self._kernel.params.append(param)
        return param

    def shared(self, name: str, dtype: DataType, shape: Tuple[int, ...]) -> SharedArray:
        """Declare a per-block shared-memory array."""
        array = SharedArray(name, dtype, tuple(shape))
        self._kernel.shared_arrays.append(array)
        return array

    def local(self, name: str, dtype: DataType, length: int) -> LocalArray:
        """Declare a per-thread local-memory array (spill space)."""
        array = LocalArray(name, dtype, length)
        self._kernel.local_arrays.append(array)
        return array

    def fresh(self, dtype: DataType, hint: str = "t") -> VirtualRegister:
        """Allocate a fresh virtual register."""
        self._counter += 1
        return VirtualRegister(f"{hint}{self._counter}", dtype)

    # ------------------------------------------------------------------
    # Operand coercion.

    def _coerce(self, operand: Operand, like: Optional[DataType] = None) -> Value:
        if isinstance(operand, bool):
            raise TypeError("booleans are not IR operands; use a predicate")
        if isinstance(operand, int):
            return Immediate(operand, like if like and like.is_integer else DataType.S32)
        if isinstance(operand, float):
            return Immediate(operand, DataType.F32)
        return operand

    def _result_dtype(self, operands: Tuple[Value, ...]) -> DataType:
        for op in operands:
            dtype = value_dtype(op)
            if dtype is not DataType.PRED:
                return dtype
        raise TypeError("cannot infer a result type from predicates only")

    # ------------------------------------------------------------------
    # Instruction emission.

    def _emit(self, stmt: Statement) -> None:
        self._body_stack[-1].append(stmt)

    def _alu(
        self,
        opcode: Opcode,
        operands: Tuple[Operand, ...],
        dtype: Optional[DataType] = None,
        dest: Optional[VirtualRegister] = None,
    ) -> VirtualRegister:
        values = tuple(self._coerce(op) for op in operands)
        out_dtype = dtype or self._result_dtype(values)
        out = dest or self.fresh(out_dtype)
        self._emit(Instruction(opcode, dest=out, srcs=values))
        return out

    def mov(self, src: Operand, dtype: Optional[DataType] = None,
            dest: Optional[VirtualRegister] = None) -> VirtualRegister:
        return self._alu(Opcode.MOV, (src,), dtype, dest)

    def add(self, a: Operand, b: Operand, dest: Optional[VirtualRegister] = None) -> VirtualRegister:
        return self._alu(Opcode.ADD, (a, b), dest=dest)

    def sub(self, a: Operand, b: Operand, dest: Optional[VirtualRegister] = None) -> VirtualRegister:
        return self._alu(Opcode.SUB, (a, b), dest=dest)

    def mul(self, a: Operand, b: Operand, dest: Optional[VirtualRegister] = None) -> VirtualRegister:
        return self._alu(Opcode.MUL, (a, b), dest=dest)

    def mad(self, a: Operand, b: Operand, c: Operand,
            dest: Optional[VirtualRegister] = None) -> VirtualRegister:
        """Fused multiply-add: the 8800 SP's native operation."""
        return self._alu(Opcode.MAD, (a, b, c), dest=dest)

    def div(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.DIV, (a, b))

    def rem(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.REM, (a, b))

    def min(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.MIN, (a, b))

    def max(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.MAX, (a, b))

    def abs(self, a: Operand) -> VirtualRegister:
        return self._alu(Opcode.ABS, (a,))

    def neg(self, a: Operand) -> VirtualRegister:
        return self._alu(Opcode.NEG, (a,))

    def shl(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.SHL, (a, b))

    def shr(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.SHR, (a, b))

    def and_(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.AND, (a, b))

    def or_(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.OR, (a, b))

    def xor(self, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.XOR, (a, b))

    def cvt(self, a: Operand, dtype: DataType) -> VirtualRegister:
        return self._alu(Opcode.CVT, (a,), dtype=dtype)

    def setp(self, cmp: CmpOp, a: Operand, b: Operand) -> VirtualRegister:
        a_val = self._coerce(a)
        b_val = self._coerce(b)
        out = self.fresh(DataType.PRED, hint="p")
        self._emit(Instruction(Opcode.SETP, dest=out, srcs=(a_val, b_val), cmp=cmp))
        return out

    def selp(self, pred: Operand, a: Operand, b: Operand) -> VirtualRegister:
        return self._alu(Opcode.SELP, (pred, a, b),
                         dtype=value_dtype(self._coerce(a)))

    # SFU transcendentals.

    def _sfu(self, opcode: Opcode, a: Operand) -> VirtualRegister:
        value = self._coerce(a)
        if value_dtype(value) is not DataType.F32:
            raise TypeError(f"{opcode.value} operates on f32")
        out = self.fresh(DataType.F32)
        self._emit(Instruction(opcode, dest=out, srcs=(value,)))
        return out

    def rcp(self, a: Operand) -> VirtualRegister:
        return self._sfu(Opcode.RCP, a)

    def sqrt(self, a: Operand) -> VirtualRegister:
        return self._sfu(Opcode.SQRT, a)

    def rsqrt(self, a: Operand) -> VirtualRegister:
        return self._sfu(Opcode.RSQRT, a)

    def sin(self, a: Operand) -> VirtualRegister:
        return self._sfu(Opcode.SIN, a)

    def cos(self, a: Operand) -> VirtualRegister:
        return self._sfu(Opcode.COS, a)

    # Memory.

    def ld(
        self,
        base: Union[Param, SharedArray, LocalArray],
        index: Operand,
        coalesced: bool = True,
        offset: int = 0,
        dest: Optional[VirtualRegister] = None,
    ) -> VirtualRegister:
        ref = MemRef(base, self._coerce(index), offset=offset)
        out = dest or self.fresh(ref.dtype, hint="v")
        self._emit(Instruction(Opcode.LD, dest=out, mem=ref, coalesced=coalesced))
        return out

    def st(
        self,
        base: Union[Param, SharedArray, LocalArray],
        index: Operand,
        value: Operand,
        coalesced: bool = True,
        offset: int = 0,
    ) -> None:
        ref = MemRef(base, self._coerce(index), offset=offset)
        self._emit(Instruction(
            Opcode.ST, srcs=(self._coerce(value),), mem=ref, coalesced=coalesced
        ))

    def bar(self) -> None:
        """Barrier over the thread block (__syncthreads)."""
        self._emit(Instruction(Opcode.BAR))

    # ------------------------------------------------------------------
    # Structured control flow.

    @contextlib.contextmanager
    def loop(
        self,
        start: Operand,
        stop: Operand,
        step: Operand = 1,
        trip_count: Optional[int] = None,
        hint: str = "i",
        label: Optional[str] = None,
    ) -> Iterator[VirtualRegister]:
        """Open a counted loop; yields the counter register."""
        counter = self.fresh(DataType.S32, hint=hint)
        loop = ForLoop(
            counter=counter,
            start=self._coerce(start),
            stop=self._coerce(stop),
            step=self._coerce(step),
            trip_count=trip_count,
            label=label,
        )
        self._emit(loop)
        self._body_stack.append(loop.body)
        try:
            yield counter
        finally:
            self._body_stack.pop()

    @contextlib.contextmanager
    def if_(self, cond: Value, taken_fraction: float = 1.0) -> Iterator["ElseHandle"]:
        """Open a conditional; yields a handle whose .orelse() opens the else."""
        branch = If(cond=cond, taken_fraction=taken_fraction)
        self._emit(branch)
        self._body_stack.append(branch.then_body)
        try:
            yield ElseHandle(self, branch)
        finally:
            self._body_stack.pop()

    # ------------------------------------------------------------------

    def finish(self) -> Kernel:
        """Return the completed kernel."""
        if len(self._body_stack) != 1:
            raise RuntimeError("unbalanced loop/if contexts")
        return self._kernel


class ElseHandle:
    """Grants access to the else-side of an ``if_`` block."""

    def __init__(self, builder: KernelBuilder, branch: If) -> None:
        self._builder = builder
        self._branch = branch

    @contextlib.contextmanager
    def orelse(self) -> Iterator[None]:
        self._builder._body_stack.append(self._branch.else_body)
        try:
            yield
        finally:
            self._builder._body_stack.pop()


# Re-exported conveniences for kernel authors.
TID_X = SpecialRegister.TID_X
TID_Y = SpecialRegister.TID_Y
TID_Z = SpecialRegister.TID_Z
NTID_X = SpecialRegister.NTID_X
NTID_Y = SpecialRegister.NTID_Y
CTAID_X = SpecialRegister.CTAID_X
CTAID_Y = SpecialRegister.CTAID_Y
NCTAID_X = SpecialRegister.NCTAID_X
NCTAID_Y = SpecialRegister.NCTAID_Y
