"""Operand kinds of the kernel IR.

A value is anything an instruction may read: a virtual register, an
immediate constant, a kernel parameter, or one of the CUDA special
registers (thread and block coordinates).  Virtual registers are the
only things instructions may write.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Union

from repro.arch.memory import MemorySpace
from repro.ir.types import DataType


@dataclasses.dataclass(frozen=True)
class VirtualRegister:
    """A typed, per-thread virtual register.

    Virtual registers are unbounded in number; the ``repro.cubin``
    allocator later maps them onto the 8192-entry physical register
    file to determine registers-per-thread.
    """

    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclasses.dataclass(frozen=True)
class Immediate:
    """A compile-time constant operand."""

    value: Union[int, float]
    dtype: DataType

    def __post_init__(self) -> None:
        if self.dtype is DataType.F32 and not isinstance(self.value, (int, float)):
            raise TypeError(f"f32 immediate must be numeric, got {self.value!r}")
        if self.dtype.is_integer and not isinstance(self.value, int):
            raise TypeError(f"integer immediate must be int, got {self.value!r}")

    def __str__(self) -> str:
        return repr(self.value)


class SpecialRegister(enum.Enum):
    """CUDA built-in coordinates, read-only within a kernel."""

    TID_X = "tid.x"
    TID_Y = "tid.y"
    TID_Z = "tid.z"
    NTID_X = "ntid.x"
    NTID_Y = "ntid.y"
    NTID_Z = "ntid.z"
    CTAID_X = "ctaid.x"
    CTAID_Y = "ctaid.y"
    NCTAID_X = "nctaid.x"
    NCTAID_Y = "nctaid.y"

    @property
    def dtype(self) -> DataType:
        return DataType.S32

    def __str__(self) -> str:
        return f"%{self.value}"


@dataclasses.dataclass(frozen=True)
class Param:
    """A kernel parameter: a scalar or a pointer to an array.

    Pointer parameters name whole arrays; memory instructions address
    them with element indices rather than raw byte addresses, which
    keeps the functional interpreter and the coalescing analysis simple
    without losing any of the structure the paper's metrics need.
    """

    name: str
    dtype: DataType
    is_pointer: bool = False
    space: MemorySpace = MemorySpace.GLOBAL

    def __post_init__(self) -> None:
        if not self.is_pointer and self.space is not MemorySpace.GLOBAL:
            raise ValueError("scalar parameters have no memory space")

    def __str__(self) -> str:
        if self.is_pointer:
            return f"{self.name}[{self.space.value}]*"
        return self.name


@dataclasses.dataclass(frozen=True)
class SharedArray:
    """A statically-sized shared-memory array declared by a kernel.

    ``shape`` is in elements; the byte footprint feeds straight into the
    per-block shared-memory accounting of ``repro.cubin``.
    """

    name: str
    dtype: DataType
    shape: tuple

    def __post_init__(self) -> None:
        if not self.shape or any(int(d) <= 0 for d in self.shape):
            raise ValueError(f"shared array {self.name} needs positive dims")

    @property
    def num_elements(self) -> int:
        total = 1
        for dim in self.shape:
            total *= int(dim)
        return total

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.dtype.size_bytes

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"__shared__ {self.dtype} {self.name}[{dims}]"


@dataclasses.dataclass(frozen=True)
class LocalArray:
    """A per-thread scratch array in off-chip local memory.

    Local memory is the register-spill space of Table 1 ("Space for
    register spilling, etc.").  The proactive-spilling optimization of
    Section 3.1 materializes these; each thread sees a private copy.
    """

    name: str
    dtype: DataType
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"local array {self.name} needs a positive length")

    @property
    def size_bytes(self) -> int:
        return self.length * self.dtype.size_bytes

    def __str__(self) -> str:
        return f"__local__ {self.dtype} {self.name}[{self.length}]"


Value = Union[VirtualRegister, Immediate, SpecialRegister, Param]
"""Anything an instruction may read."""


def value_dtype(value: Value) -> DataType:
    """The scalar type carried by an operand."""
    if isinstance(value, SpecialRegister):
        return value.dtype
    return value.dtype


def imm(value: Union[int, float], dtype: DataType = None) -> Immediate:
    """Convenience constructor: infer s32 for ints and f32 for floats."""
    if dtype is None:
        dtype = DataType.S32 if isinstance(value, int) else DataType.F32
    return Immediate(value, dtype)
