"""Instructions of the kernel IR.

The opcode vocabulary mirrors the portion of PTX the paper relies on:
single-precision and integer ALU operations, the SFU transcendentals
(reciprocal square root, sine, cosine — Section 2.1), loads and stores
against each memory space, and barrier synchronization.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple, Union

from repro.arch.memory import MemorySpace
from repro.ir.types import CmpOp, DataType
from repro.ir.values import LocalArray, Param, SharedArray, Value, VirtualRegister


class Opcode(enum.Enum):
    """Operation kinds, grouped by functional unit."""

    # SP arithmetic.
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"            # dest = src0 * src1 + src2
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CVT = "cvt"            # convert between f32 and integer types
    SETP = "setp"          # predicate = src0 <cmp> src1
    SELP = "selp"          # dest = pred ? src0 : src1

    # SFU transcendentals (low latency on dedicated units).
    RCP = "rcp"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    EX2 = "ex2"
    LG2 = "lg2"

    # Memory.
    LD = "ld"
    ST = "st"

    # Synchronization.
    BAR = "bar.sync"

    @property
    def is_sfu(self) -> bool:
        return self in _SFU_OPS

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LD, Opcode.ST)

    @property
    def is_barrier(self) -> bool:
        return self is Opcode.BAR


_SFU_OPS = frozenset(
    {Opcode.RCP, Opcode.SQRT, Opcode.RSQRT, Opcode.SIN, Opcode.COS,
     Opcode.EX2, Opcode.LG2}
)

ARITY = {
    Opcode.MOV: 1, Opcode.ADD: 2, Opcode.SUB: 2, Opcode.MUL: 2,
    Opcode.MAD: 3, Opcode.DIV: 2, Opcode.REM: 2, Opcode.MIN: 2,
    Opcode.MAX: 2, Opcode.ABS: 1, Opcode.NEG: 1, Opcode.AND: 2,
    Opcode.OR: 2, Opcode.XOR: 2, Opcode.SHL: 2, Opcode.SHR: 2,
    Opcode.CVT: 1, Opcode.SETP: 2, Opcode.SELP: 3,
    Opcode.RCP: 1, Opcode.SQRT: 1, Opcode.RSQRT: 1, Opcode.SIN: 1,
    Opcode.COS: 1, Opcode.EX2: 1, Opcode.LG2: 1,
}
"""Source-operand counts for register-to-register opcodes."""


@dataclasses.dataclass(frozen=True)
class MemRef:
    """An element-indexed reference into an array.

    ``base`` names the array — a pointer Param for global, constant or
    texture space, or a SharedArray for shared space.  ``index`` is the
    flat element index.  Using element indices (not byte addresses)
    keeps interpretation exact while preserving everything the analyses
    need: which space is touched, how many bytes move, and whether
    consecutive threads touch consecutive elements (coalescing).
    """

    base: Union[Param, SharedArray, LocalArray]
    index: Value
    offset: int = 0

    @property
    def space(self) -> MemorySpace:
        if isinstance(self.base, SharedArray):
            return MemorySpace.SHARED
        if isinstance(self.base, LocalArray):
            return MemorySpace.LOCAL
        return self.base.space

    @property
    def dtype(self) -> DataType:
        return self.base.dtype

    def __str__(self) -> str:
        if self.offset:
            return f"{self.base.name}[{self.index}+{self.offset}]"
        return f"{self.base.name}[{self.index}]"


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One IR instruction.

    ``dest`` is None for stores and barriers.  ``mem`` is set only for
    LD/ST.  ``cmp`` is set only for SETP.  ``coalesced`` is a static
    annotation on global memory operations: True when consecutive
    threads of a warp access consecutive elements (the Table 1 note on
    coalescing); the timing simulator charges uncoalesced accesses a
    bandwidth penalty.
    """

    opcode: Opcode
    dest: Optional[VirtualRegister] = None
    srcs: Tuple[Value, ...] = ()
    mem: Optional[MemRef] = None
    cmp: Optional[CmpOp] = None
    coalesced: bool = True

    def __post_init__(self) -> None:
        if self.opcode in ARITY:
            expected = ARITY[self.opcode]
            if len(self.srcs) != expected:
                raise ValueError(
                    f"{self.opcode.value} takes {expected} operands, "
                    f"got {len(self.srcs)}"
                )
            if self.dest is None:
                raise ValueError(f"{self.opcode.value} requires a destination")
            if self.mem is not None:
                raise ValueError(f"{self.opcode.value} takes no memory operand")
        if self.opcode is Opcode.SETP and self.cmp is None:
            raise ValueError("setp requires a comparison operator")
        if self.opcode is not Opcode.SETP and self.cmp is not None:
            raise ValueError(f"{self.opcode.value} takes no comparison operator")
        if self.opcode is Opcode.LD:
            if self.mem is None or self.dest is None or self.srcs:
                raise ValueError("ld requires a memory operand and a destination")
            if self.mem.space.is_read_only is False and self.mem.space not in (
                MemorySpace.GLOBAL, MemorySpace.SHARED, MemorySpace.LOCAL
            ):
                raise ValueError(f"cannot load from {self.mem.space}")
        if self.opcode is Opcode.ST:
            if self.mem is None or self.dest is not None or len(self.srcs) != 1:
                raise ValueError("st requires a memory operand and one source")
            if self.mem.space.is_read_only:
                raise ValueError(f"cannot store to read-only {self.mem.space}")
        if self.opcode is Opcode.BAR and (
            self.dest is not None or self.srcs or self.mem is not None
        ):
            raise ValueError("bar.sync takes no operands")

    @property
    def is_global_access(self) -> bool:
        return (
            self.mem is not None
            and self.mem.space in (MemorySpace.GLOBAL, MemorySpace.LOCAL)
        )

    @property
    def is_long_latency(self) -> bool:
        """Long-latency per Section 4: global/texture/local *loads*.

        Stores retire into the memory system without blocking the
        issuing warp, so they neither delimit regions nor disqualify
        SFU instructions from counting as the longest-latency ops.
        """
        return (
            self.opcode is Opcode.LD
            and self.mem.space in (
                MemorySpace.GLOBAL, MemorySpace.LOCAL, MemorySpace.TEXTURE
            )
        )

    @property
    def reads(self) -> Tuple[Value, ...]:
        """All values this instruction reads, including address indices."""
        operands = list(self.srcs)
        if self.mem is not None:
            operands.append(self.mem.index)
        return tuple(operands)

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.cmp is not None:
            parts.append(f".{self.cmp}")
        head = "".join(parts)
        operands = []
        if self.dest is not None:
            operands.append(str(self.dest))
        if self.mem is not None and self.opcode is Opcode.LD:
            operands.append(str(self.mem))
        operands.extend(str(s) for s in self.srcs)
        if self.mem is not None and self.opcode is Opcode.ST:
            operands.insert(0, str(self.mem))
        return f"{head} {', '.join(operands)}" if operands else head
