"""CUDA-like structured kernel IR (the substrate the compiler works on)."""

from repro.ir.builder import KernelBuilder
from repro.ir.instructions import ARITY, Instruction, MemRef, Opcode
from repro.ir.kernel import Dim3, Kernel, flatten_thread_index, warp_assignment
from repro.ir.pretty import format_kernel
from repro.ir.statements import ForLoop, If, Statement, instructions, walk
from repro.ir.types import CmpOp, DataType
from repro.ir.validate import ValidationError, validate
from repro.ir.values import (
    Immediate,
    LocalArray,
    Param,
    SharedArray,
    SpecialRegister,
    Value,
    VirtualRegister,
    imm,
    value_dtype,
)

__all__ = [
    "ARITY",
    "CmpOp",
    "DataType",
    "Dim3",
    "ForLoop",
    "If",
    "Immediate",
    "Instruction",
    "Kernel",
    "LocalArray",
    "KernelBuilder",
    "MemRef",
    "Opcode",
    "Param",
    "SharedArray",
    "SpecialRegister",
    "Statement",
    "ValidationError",
    "Value",
    "VirtualRegister",
    "flatten_thread_index",
    "format_kernel",
    "imm",
    "instructions",
    "validate",
    "value_dtype",
    "walk",
    "warp_assignment",
]
