"""Functional interpreter: the correctness oracle for kernel IR."""

from repro.interp.executor import (
    MAX_INTERPRETED_THREADS,
    BarrierDivergence,
    KernelFault,
    launch,
)
from repro.interp.state import (
    ThreadContext,
    ThreadState,
    UninitializedRead,
    numpy_dtype,
)
from repro.interp.vectorized import launch_vectorized

__all__ = [
    "MAX_INTERPRETED_THREADS",
    "BarrierDivergence",
    "KernelFault",
    "ThreadContext",
    "ThreadState",
    "UninitializedRead",
    "launch",
    "launch_vectorized",
    "numpy_dtype",
]
