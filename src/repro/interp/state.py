"""Execution state for the functional interpreter."""

from __future__ import annotations

import dataclasses
from typing import Dict, Union

import numpy as np

from repro.ir.kernel import Dim3
from repro.ir.types import DataType
from repro.ir.values import LocalArray, SharedArray, VirtualRegister

_NUMPY_DTYPE = {
    DataType.F32: np.float32,
    DataType.S32: np.int32,
    DataType.U32: np.uint32,
    DataType.PRED: np.bool_,
}


def numpy_dtype(dtype: DataType):
    """The numpy dtype backing one IR scalar type."""
    return _NUMPY_DTYPE[dtype]


class UninitializedRead(RuntimeError):
    """A thread read a register it never wrote."""


@dataclasses.dataclass
class ThreadContext:
    """Immutable coordinates of one thread."""

    tid: tuple
    ctaid: tuple
    block_dim: Dim3
    grid_dim: Dim3


class ThreadState:
    """Registers and local memory of a single executing thread."""

    __slots__ = ("context", "registers", "local_arrays")

    def __init__(self, context: ThreadContext, local_arrays) -> None:
        self.context = context
        self.registers: Dict[VirtualRegister, Union[int, float, bool]] = {}
        self.local_arrays: Dict[LocalArray, np.ndarray] = {
            array: np.zeros(array.length, dtype=numpy_dtype(array.dtype))
            for array in local_arrays
        }

    def read(self, register: VirtualRegister):
        try:
            return self.registers[register]
        except KeyError:
            raise UninitializedRead(
                f"thread {self.context.tid} read {register} before writing it"
            ) from None

    def write(self, register: VirtualRegister, value) -> None:
        self.registers[register] = value


def allocate_shared(arrays) -> Dict[SharedArray, np.ndarray]:
    """Fresh zeroed shared-memory arrays for one thread block."""
    return {
        array: np.zeros(array.num_elements, dtype=numpy_dtype(array.dtype))
        for array in arrays
    }
