"""Vectorized kernel execution: all threads of a block at once.

A second, independent execution engine: registers are numpy arrays
over the block's threads and every statement executes in lockstep
under an activity mask — the way the SIMD hardware actually behaves.
It is 1-2 orders of magnitude faster than the scalar interpreter,
which makes larger correctness checks affordable, and it doubles as a
semantic cross-check: for race-free kernels (every inter-thread
shared-memory communication separated by a barrier, as CUDA requires)
the two engines must agree exactly.

Restrictions (checked, not silently mis-executed):

* a barrier may not appear under divergent control flow
  (``BarrierDivergence``, as on hardware);
* conflicting same-statement shared stores resolve last-thread-wins,
  matching the scalar engine's thread ordering.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.arch.memory import MemorySpace
from repro.interp.executor import (
    MAX_INTERPRETED_THREADS,
    BarrierDivergence,
    KernelFault,
)
from repro.interp.state import numpy_dtype
from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If
from repro.ir.types import CmpOp, DataType
from repro.ir.values import (
    Immediate,
    LocalArray,
    Param,
    SharedArray,
    SpecialRegister,
    Value,
    VirtualRegister,
)

_BINARY_UFUNCS = {
    Opcode.ADD: np.add,
    Opcode.SUB: np.subtract,
    Opcode.MUL: np.multiply,
    Opcode.MIN: np.minimum,
    Opcode.MAX: np.maximum,
    Opcode.AND: np.bitwise_and,
    Opcode.OR: np.bitwise_or,
    Opcode.XOR: np.bitwise_xor,
}

_UNARY_UFUNCS = {
    Opcode.ABS: np.abs,
    Opcode.NEG: np.negative,
    Opcode.SQRT: np.sqrt,
    Opcode.SIN: np.sin,
    Opcode.COS: np.cos,
}

_COMPARES = {
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
}


class _VectorBlock:
    """Executes one thread block with lane-vectorized state."""

    def __init__(self, kernel: Kernel, arrays, scalars, ctaid) -> None:
        self.kernel = kernel
        self.arrays = arrays
        self.scalars = scalars
        block = kernel.block_dim
        self.lanes = block.count
        tx = np.arange(self.lanes, dtype=np.int64) % block.x
        rest = np.arange(self.lanes, dtype=np.int64) // block.x
        self.specials = {
            SpecialRegister.TID_X: tx,
            SpecialRegister.TID_Y: rest % block.y,
            SpecialRegister.TID_Z: rest // block.y,
            SpecialRegister.NTID_X: np.full(self.lanes, block.x, np.int64),
            SpecialRegister.NTID_Y: np.full(self.lanes, block.y, np.int64),
            SpecialRegister.NTID_Z: np.full(self.lanes, block.z, np.int64),
            SpecialRegister.CTAID_X: np.full(self.lanes, ctaid[0], np.int64),
            SpecialRegister.CTAID_Y: np.full(self.lanes, ctaid[1], np.int64),
            SpecialRegister.NCTAID_X: np.full(
                self.lanes, kernel.grid_dim.x, np.int64),
            SpecialRegister.NCTAID_Y: np.full(
                self.lanes, kernel.grid_dim.y, np.int64),
        }
        self.registers: Dict[VirtualRegister, np.ndarray] = {}
        self.shared = {
            array: np.zeros(array.num_elements, numpy_dtype(array.dtype))
            for array in kernel.shared_arrays
        }
        self.local = {
            array: np.zeros((self.lanes, array.length),
                            numpy_dtype(array.dtype))
            for array in kernel.local_arrays
        }

    # ------------------------------------------------------------------

    def _eval(self, value: Value) -> np.ndarray:
        if isinstance(value, VirtualRegister):
            try:
                return self.registers[value]
            except KeyError:
                raise KernelFault(
                    f"register {value} read before any write"
                ) from None
        if isinstance(value, Immediate):
            dtype = numpy_dtype(value.dtype)
            return np.full(self.lanes, value.value, dtype)
        if isinstance(value, SpecialRegister):
            return self.specials[value]
        if isinstance(value, Param):
            if value.is_pointer:
                raise KernelFault(f"pointer {value.name} used as a scalar")
            try:
                scalar = self.scalars[value.name]
            except KeyError:
                raise KernelFault(
                    f"missing scalar argument {value.name!r}"
                ) from None
            return np.full(self.lanes, scalar, numpy_dtype(value.dtype))
        raise KernelFault(f"unreadable operand {value!r}")

    def _write(self, register: VirtualRegister, values: np.ndarray,
               mask: np.ndarray) -> None:
        values = values.astype(numpy_dtype(register.dtype), copy=False)
        if mask.all():
            self.registers[register] = values.copy()
            return
        current = self.registers.get(register)
        if current is None:
            current = np.zeros(self.lanes, numpy_dtype(register.dtype))
        self.registers[register] = np.where(mask, values, current)

    # ------------------------------------------------------------------

    def _storage(self, base):
        if isinstance(base, SharedArray):
            return self.shared[base]
        if isinstance(base, LocalArray):
            return self.local[base]
        try:
            return self.arrays[base.name]
        except KeyError:
            raise KernelFault(f"missing array argument {base.name!r}") from None

    def _load(self, instr: Instruction, mask: np.ndarray) -> None:
        storage = self._storage(instr.mem.base)
        index = self._eval(instr.mem.index).astype(np.int64) + instr.mem.offset
        if isinstance(instr.mem.base, LocalArray):
            values = storage[np.arange(self.lanes),
                             np.clip(index, 0, storage.shape[1] - 1)]
            bad = mask & ((index < 0) | (index >= storage.shape[1]))
            if bad.any():
                raise KernelFault(f"{instr}: local index out of range")
        else:
            flat = storage.ravel() if storage.ndim > 1 else storage
            if instr.mem.space in (MemorySpace.SHARED,):
                bad = mask & ((index < 0) | (index >= flat.size))
                if bad.any():
                    raise KernelFault(
                        f"{instr}: index outside {instr.mem.base.name}"
                        f"[{flat.size}]"
                    )
                safe = np.clip(index, 0, flat.size - 1)
            else:
                # Harmless-overfetch clamp, as in the scalar engine.
                safe = np.clip(index, 0, flat.size - 1)
            values = flat[safe]
        self._write(instr.dest, values, mask)

    def _store(self, instr: Instruction, mask: np.ndarray) -> None:
        storage = self._storage(instr.mem.base)
        index = self._eval(instr.mem.index).astype(np.int64) + instr.mem.offset
        values = self._eval(instr.srcs[0])
        if isinstance(instr.mem.base, LocalArray):
            bad = mask & ((index < 0) | (index >= storage.shape[1]))
            if bad.any():
                raise KernelFault(f"{instr}: local store out of range")
            lanes = np.nonzero(mask)[0]
            storage[lanes, index[lanes]] = values[lanes]
            return
        flat = storage.ravel() if storage.ndim > 1 else storage
        bad = mask & ((index < 0) | (index >= flat.size))
        if bad.any():
            offender = int(index[np.argmax(bad)])
            raise KernelFault(
                f"{instr}: store index {offender} outside "
                f"{instr.mem.base.name}[{flat.size}]"
            )
        lanes = np.nonzero(mask)[0]
        # np.ndarray fancy assignment applies in order: last lane wins,
        # matching the scalar engine's thread ordering.
        flat[index[lanes]] = values[lanes].astype(flat.dtype, copy=False)

    # ------------------------------------------------------------------

    def _alu(self, instr: Instruction, mask: np.ndarray) -> None:
        opcode = instr.opcode
        out_dtype = numpy_dtype(instr.dest.dtype)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if opcode is Opcode.MOV:
                result = self._eval(instr.srcs[0])
            elif opcode in _BINARY_UFUNCS:
                a, b = (self._eval(s) for s in instr.srcs)
                result = _BINARY_UFUNCS[opcode](
                    a.astype(out_dtype, copy=False),
                    b.astype(out_dtype, copy=False),
                )
            elif opcode is Opcode.MAD:
                a, b, c = (self._eval(s).astype(out_dtype, copy=False)
                           for s in instr.srcs)
                result = a * b + c
            elif opcode is Opcode.DIV:
                a, b = (self._eval(s) for s in instr.srcs)
                if instr.dest.dtype is DataType.F32:
                    result = a.astype(np.float32) / b
                else:
                    quotient = np.abs(a.astype(np.int64)) // np.abs(
                        b.astype(np.int64))
                    sign = np.where((a >= 0) == (b >= 0), 1, -1)
                    result = sign * quotient
            elif opcode is Opcode.REM:
                a, b = (self._eval(s).astype(np.int64) for s in instr.srcs)
                quotient = np.abs(a) // np.abs(b)
                sign = np.where((a >= 0) == (b >= 0), 1, -1)
                result = a - sign * quotient * b
            elif opcode in (Opcode.SHL, Opcode.SHR):
                a, b = (self._eval(s) for s in instr.srcs)
                shift = b.astype(np.int64) & 31
                if opcode is Opcode.SHL:
                    result = a.astype(np.int64) << shift
                else:
                    result = a.astype(np.int64) >> shift
            elif opcode in _UNARY_UFUNCS:
                result = _UNARY_UFUNCS[opcode](
                    self._eval(instr.srcs[0]).astype(out_dtype, copy=False)
                )
            elif opcode is Opcode.RCP:
                result = np.float32(1.0) / self._eval(instr.srcs[0]).astype(
                    np.float32)
            elif opcode is Opcode.RSQRT:
                result = np.float32(1.0) / np.sqrt(
                    self._eval(instr.srcs[0]).astype(np.float32))
            elif opcode is Opcode.EX2:
                result = np.exp2(self._eval(instr.srcs[0]).astype(np.float32))
            elif opcode is Opcode.LG2:
                result = np.log2(self._eval(instr.srcs[0]).astype(np.float32))
            elif opcode is Opcode.CVT:
                result = self._eval(instr.srcs[0]).astype(out_dtype)
            elif opcode is Opcode.SETP:
                a, b = (self._eval(s) for s in instr.srcs)
                result = _COMPARES[instr.cmp](a, b)
            elif opcode is Opcode.SELP:
                pred, a, b = (self._eval(s) for s in instr.srcs)
                result = np.where(pred.astype(bool), a, b)
            else:
                raise KernelFault(f"no vectorized semantics for {opcode}")
        self._write(instr.dest, np.asarray(result), mask)

    # ------------------------------------------------------------------

    def run_body(self, body, mask: np.ndarray) -> None:
        uniform = bool(mask.all())
        for stmt in body:
            if isinstance(stmt, Instruction):
                if stmt.opcode is Opcode.BAR:
                    if not uniform:
                        raise BarrierDivergence(
                            "barrier under divergent control flow"
                        )
                    # Lockstep execution makes the barrier a no-op.
                    continue
                if stmt.opcode is Opcode.LD:
                    self._load(stmt, mask)
                elif stmt.opcode is Opcode.ST:
                    self._store(stmt, mask)
                else:
                    self._alu(stmt, mask)
            elif isinstance(stmt, ForLoop):
                counter = self._eval(stmt.start).astype(np.int64)
                stop = self._eval(stmt.stop).astype(np.int64)
                step = self._eval(stmt.step).astype(np.int64)
                if (step <= 0).any():
                    raise KernelFault("non-positive loop step")
                self._write(stmt.counter, counter, mask)
                while True:
                    active = mask & (counter < stop)
                    if not active.any():
                        break
                    self.run_body(stmt.body, active)
                    counter = counter + np.where(active, step, 0)
                    self._write(stmt.counter, counter, active)
            elif isinstance(stmt, If):
                condition = self._eval(stmt.cond).astype(bool)
                taken = mask & condition
                fallthrough = mask & ~condition
                if taken.any():
                    self.run_body(stmt.then_body, taken)
                if fallthrough.any():
                    self.run_body(stmt.else_body, fallthrough)


def launch_vectorized(
    kernel: Kernel,
    arrays: Dict[str, np.ndarray],
    scalars: Optional[Dict[str, Union[int, float]]] = None,
) -> None:
    """Vectorized twin of :func:`repro.interp.launch` (same contract)."""
    scalars = scalars or {}
    kernel.check_launch()
    if kernel.total_threads > MAX_INTERPRETED_THREADS * 16:
        raise KernelFault(
            f"refusing to interpret {kernel.total_threads} threads"
        )
    for param in kernel.params:
        if param.is_pointer:
            if param.name not in arrays:
                raise KernelFault(f"missing array argument {param.name!r}")
            expected = numpy_dtype(param.dtype)
            if arrays[param.name].dtype != expected:
                raise KernelFault(
                    f"array {param.name!r} has dtype "
                    f"{arrays[param.name].dtype}, kernel expects "
                    f"{np.dtype(expected)}"
                )
        elif param.name not in scalars:
            raise KernelFault(f"missing scalar argument {param.name!r}")

    grid = kernel.grid_dim
    full_mask = np.ones(kernel.block_dim.count, dtype=bool)
    for cz in range(grid.z):
        for cy in range(grid.y):
            for cx in range(grid.x):
                block = _VectorBlock(kernel, arrays, scalars, (cx, cy, cz))
                block.run_body(kernel.body, full_mask)
