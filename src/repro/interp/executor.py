"""Functional (semantics-only) execution of kernel IR.

This is the correctness oracle of the reproduction: every optimization
configuration of every application must compute the same results as
the numpy reference, and the transform passes are tested by running
original and transformed kernels side by side.

Execution model:

* each thread block runs to completion before the next starts (blocks
  are independent by construction — Section 2.1: synchronization
  across thread blocks can only happen by terminating the kernel);
* within a block, threads run as coroutines that yield at barriers,
  giving exact ``__syncthreads`` phase semantics;
* global loads clamp their index into the array — the paper's own
  prefetched kernels over-fetch one tile past the end, which real
  hardware tolerated; stores are always bounds-checked strictly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.arch.memory import MemorySpace
from repro.interp.state import (
    ThreadContext,
    ThreadState,
    allocate_shared,
    numpy_dtype,
)
from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.semantics import eval_op
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import (
    Immediate,
    LocalArray,
    Param,
    SharedArray,
    SpecialRegister,
    Value,
    VirtualRegister,
)

MAX_INTERPRETED_THREADS = 1 << 16
"""The interpreter is a correctness oracle, not a throughput engine."""


class KernelFault(RuntimeError):
    """An out-of-bounds store or other hard execution error."""


class BarrierDivergence(RuntimeError):
    """Threads of one block disagreed about reaching a barrier."""


_SPECIAL_READERS = {
    SpecialRegister.TID_X: lambda c: c.tid[0],
    SpecialRegister.TID_Y: lambda c: c.tid[1],
    SpecialRegister.TID_Z: lambda c: c.tid[2],
    SpecialRegister.NTID_X: lambda c: c.block_dim.x,
    SpecialRegister.NTID_Y: lambda c: c.block_dim.y,
    SpecialRegister.NTID_Z: lambda c: c.block_dim.z,
    SpecialRegister.CTAID_X: lambda c: c.ctaid[0],
    SpecialRegister.CTAID_Y: lambda c: c.ctaid[1],
    SpecialRegister.NCTAID_X: lambda c: c.grid_dim.x,
    SpecialRegister.NCTAID_Y: lambda c: c.grid_dim.y,
}


class _BlockExecutor:
    """Runs all threads of one block in barrier-synchronized phases."""

    def __init__(
        self,
        kernel: Kernel,
        arrays: Dict[str, np.ndarray],
        scalars: Dict[str, Union[int, float]],
        ctaid: tuple,
    ) -> None:
        self.kernel = kernel
        self.arrays = arrays
        self.scalars = scalars
        self.shared = allocate_shared(kernel.shared_arrays)
        self.ctaid = ctaid

    # -- value evaluation ------------------------------------------------

    def _eval(self, value: Value, state: ThreadState):
        if isinstance(value, VirtualRegister):
            return state.read(value)
        if isinstance(value, Immediate):
            return value.value
        if isinstance(value, SpecialRegister):
            return _SPECIAL_READERS[value](state.context)
        if isinstance(value, Param):
            if value.is_pointer:
                raise KernelFault(f"pointer {value.name} used as a scalar")
            try:
                return self.scalars[value.name]
            except KeyError:
                raise KernelFault(
                    f"missing scalar argument {value.name!r}"
                ) from None
        raise KernelFault(f"unreadable operand {value!r}")

    def _storage(self, base, state: ThreadState) -> np.ndarray:
        if isinstance(base, SharedArray):
            return self.shared[base]
        if isinstance(base, LocalArray):
            return state.local_arrays[base]
        try:
            return self.arrays[base.name]
        except KeyError:
            raise KernelFault(f"missing array argument {base.name!r}") from None

    # -- instruction execution -------------------------------------------

    def _execute(self, instr: Instruction, state: ThreadState) -> None:
        opcode = instr.opcode
        if opcode is Opcode.LD:
            storage = self._storage(instr.mem.base, state)
            index = int(self._eval(instr.mem.index, state)) + instr.mem.offset
            if instr.mem.space in (MemorySpace.SHARED, MemorySpace.LOCAL):
                if not 0 <= index < storage.size:
                    raise KernelFault(
                        f"{instr}: index {index} outside "
                        f"{instr.mem.base.name}[{storage.size}]"
                    )
            else:
                # Harmless-overfetch model for off-chip reads.
                index = min(max(index, 0), storage.size - 1)
            state.write(instr.dest, storage[index].item())
            return
        if opcode is Opcode.ST:
            storage = self._storage(instr.mem.base, state)
            index = int(self._eval(instr.mem.index, state)) + instr.mem.offset
            if not 0 <= index < storage.size:
                raise KernelFault(
                    f"{instr}: store index {index} outside "
                    f"{instr.mem.base.name}[{storage.size}]"
                )
            value = self._eval(instr.srcs[0], state)
            storage[index] = value
            return
        args = tuple(self._eval(v, state) for v in instr.srcs)
        state.write(
            instr.dest, eval_op(opcode, instr.dest.dtype, args, cmp=instr.cmp)
        )

    # -- structured execution as barrier-yielding coroutines --------------

    def _run_body(self, body: List[Statement], state: ThreadState) -> Iterator[None]:
        for stmt in body:
            if isinstance(stmt, Instruction):
                if stmt.opcode is Opcode.BAR:
                    yield None
                else:
                    self._execute(stmt, state)
            elif isinstance(stmt, ForLoop):
                counter = int(self._eval(stmt.start, state))
                stop = int(self._eval(stmt.stop, state))
                step = int(self._eval(stmt.step, state))
                if step <= 0:
                    raise KernelFault(f"non-positive loop step {step}")
                state.write(stmt.counter, counter)
                while counter < stop:
                    yield from self._run_body(stmt.body, state)
                    counter += step
                    state.write(stmt.counter, counter)
            elif isinstance(stmt, If):
                if bool(self._eval(stmt.cond, state)):
                    yield from self._run_body(stmt.then_body, state)
                else:
                    yield from self._run_body(stmt.else_body, state)

    def run(self) -> None:
        block = self.kernel.block_dim
        threads = []
        for tz in range(block.z):
            for ty in range(block.y):
                for tx in range(block.x):
                    context = ThreadContext(
                        tid=(tx, ty, tz),
                        ctaid=self.ctaid,
                        block_dim=block,
                        grid_dim=self.kernel.grid_dim,
                    )
                    state = ThreadState(context, self.kernel.local_arrays)
                    threads.append(self._run_body(self.kernel.body, state))

        live = list(range(len(threads)))
        while live:
            at_barrier = []
            finished = []
            for thread_index in live:
                try:
                    next(threads[thread_index])
                    at_barrier.append(thread_index)
                except StopIteration:
                    finished.append(thread_index)
            if at_barrier and finished:
                raise BarrierDivergence(
                    f"block {self.ctaid}: {len(at_barrier)} threads at a "
                    f"barrier while {len(finished)} exited"
                )
            live = at_barrier


def launch(
    kernel: Kernel,
    arrays: Dict[str, np.ndarray],
    scalars: Optional[Dict[str, Union[int, float]]] = None,
) -> None:
    """Execute a kernel over numpy buffers (mutating them in place).

    ``arrays`` maps pointer-parameter names to 1-D numpy arrays;
    ``scalars`` maps scalar-parameter names to numbers.
    """
    scalars = scalars or {}
    kernel.check_launch()
    if kernel.total_threads > MAX_INTERPRETED_THREADS:
        raise KernelFault(
            f"refusing to interpret {kernel.total_threads} threads; "
            f"use a problem size under {MAX_INTERPRETED_THREADS}"
        )
    for param in kernel.params:
        if param.is_pointer:
            if param.name not in arrays:
                raise KernelFault(f"missing array argument {param.name!r}")
            array = arrays[param.name]
            if array.ndim != 1:
                raise KernelFault(f"array {param.name!r} must be 1-D (flattened)")
            expected = numpy_dtype(param.dtype)
            if array.dtype != expected:
                raise KernelFault(
                    f"array {param.name!r} has dtype {array.dtype}, "
                    f"kernel expects {np.dtype(expected)}"
                )
        elif param.name not in scalars:
            raise KernelFault(f"missing scalar argument {param.name!r}")

    grid = kernel.grid_dim
    for cz in range(grid.z):
        for cy in range(grid.y):
            for cx in range(grid.x):
                _BlockExecutor(kernel, arrays, scalars, (cx, cy, cz)).run()
