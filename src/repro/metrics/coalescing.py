"""Coalescing-aware efficiency — the paper's Section 7 future work.

"Second, we wish to account for factors such as memory access
coalescing that are currently not factored into the performance
metrics, so that they may be more effective predictors of
performance."

The adjustment charges every uncoalesced global access its true
interface cost in instruction-equivalents: an uncoalesced 4-byte word
moves ``factor`` times its size across the DRAM pins, which costs the
same machine time as issuing ``factor - 1`` additional instructions
would (both are measured in 4-cycle units at the fair-share transfer
rate).  The result drops bandwidth-crippled configurations (the 8x8
matmul tiles) off the Pareto frontier without mispricing anything
else.
"""

from __future__ import annotations

import dataclasses

from repro.metrics.efficiency import efficiency
from repro.metrics.model import MetricReport

WORD_BYTES = 4


@dataclasses.dataclass(frozen=True)
class AdjustedMetrics:
    """Metric pair with the coalescing penalty folded into Instr."""

    efficiency: float
    utilization: float
    adjusted_instructions: float
    penalty_instructions: float


def coalescing_adjusted(
    report: MetricReport,
    uncoalesced_traffic_factor: float = 8.0,
) -> AdjustedMetrics:
    """Re-derive Equation 1 with coalescing-penalized instruction counts.

    Utilization is left untouched: uncoalesced accesses waste
    bandwidth, not latency-hiding opportunity.
    """
    traffic = report.profile.traffic
    uncoalesced_words = (
        traffic.uncoalesced_load_bytes + traffic.uncoalesced_store_bytes
    ) / WORD_BYTES
    penalty = uncoalesced_words * (uncoalesced_traffic_factor - 1.0)
    adjusted = report.instructions + penalty
    return AdjustedMetrics(
        efficiency=efficiency(adjusted, report.threads),
        utilization=report.utilization,
        adjusted_instructions=adjusted,
        penalty_instructions=penalty,
    )


def adjusted_point(report: MetricReport) -> tuple:
    """(efficiency, utilization) for Pareto plots, coalescing-aware."""
    adjusted = coalescing_adjusted(report)
    return (adjusted.efficiency, adjusted.utilization)
