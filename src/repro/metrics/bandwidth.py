"""Bandwidth-boundedness screen (Section 4).

"In order for these metrics to correlate to performance, global memory
bandwidth must not be the bottleneck on performance.  This is easily
calculated by examining the percentage of memory accesses in the
instruction stream and determining the average number of bytes being
transferred per cycle."

The estimate assumes the issue port never starves (the best case the
metrics describe): one warp instruction per four cycles bounds the
instruction rate, and the per-thread traffic of the profile bounds the
bytes that rate tries to move.
"""

from __future__ import annotations

import dataclasses

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec
from repro.ptx.analysis import ExecutionProfile


@dataclasses.dataclass(frozen=True)
class BandwidthEstimate:
    """Static estimate of a configuration's DRAM pressure."""

    demand_bytes_per_cycle: float
    available_bytes_per_cycle: float
    memory_instruction_fraction: float

    @property
    def demand_ratio(self) -> float:
        return self.demand_bytes_per_cycle / self.available_bytes_per_cycle

    def is_bandwidth_bound(self, threshold: float = 1.0) -> bool:
        return self.demand_ratio > threshold


def estimate_bandwidth(
    profile: ExecutionProfile,
    threads_per_block: int,
    blocks_per_sm: int,
    device: DeviceSpec = GEFORCE_8800_GTX,
    issue_cycles_per_instruction: int = 4,
    uncoalesced_traffic_factor: float = 8.0,
) -> BandwidthEstimate:
    """Bytes per cycle one SM demands if never memory-stalled.

    An SM issues one warp instruction per ``issue_cycles`` cycles, so a
    block's warps take ``Instr * warps * issue_cycles`` port cycles.
    Dividing the block's global traffic by that time gives per-SM
    demand; comparing against the SM's fair share of the interface
    flags bandwidth-bound configurations.

    Uncoalesced accesses are charged their G80 interface cost (a
    32-byte transaction per 4-byte word).  The paper lists coalescing
    as a factor its metrics do not yet include (Section 7); folding it
    into this *screen* is exactly what makes the 8x8 matmul tiles
    statically recognizable as bandwidth-bound.
    """
    warps = max(1, -(-threads_per_block // device.warp_size))
    block_issue_cycles = profile.instructions * warps * issue_cycles_per_instruction
    traffic = profile.traffic
    coalesced_bytes = traffic.total_bytes - (
        traffic.uncoalesced_load_bytes + traffic.uncoalesced_store_bytes
    )
    effective_bytes = coalesced_bytes + uncoalesced_traffic_factor * (
        traffic.uncoalesced_load_bytes + traffic.uncoalesced_store_bytes
    )
    block_bytes = effective_bytes * threads_per_block
    demand = block_bytes / block_issue_cycles if block_issue_cycles else 0.0
    available = device.bytes_per_cycle / device.num_sms
    memory_ops = (
        profile.traffic.load_bytes + profile.traffic.store_bytes
    ) / 4.0  # 4-byte words per access
    fraction = memory_ops / profile.instructions if profile.instructions else 0.0
    # Demand scales with the number of resident blocks only until the
    # port saturates; a single block's warps already keep the port
    # busy, so residency does not multiply demand.
    del blocks_per_sm
    return BandwidthEstimate(
        demand_bytes_per_cycle=demand,
        available_bytes_per_cycle=available,
        memory_instruction_fraction=fraction,
    )
