"""Equation 1: the efficiency metric.

    Efficiency = 1 / (Instr * Threads)

"This efficiency metric indicates the overall efficiency of the
configuration in terms of how many total instructions must execute
before the kernel finishes."  Higher is better; only relative values
between configurations are meaningful (Section 4).
"""

from __future__ import annotations


def efficiency(instructions: float, threads: int) -> float:
    """Efficiency of one configuration.

    ``instructions`` is the per-thread dynamic instruction count from
    the PTX analysis; ``threads`` is the total number of threads the
    grid launches.
    """
    if instructions <= 0:
        raise ValueError(f"instruction count must be positive, got {instructions}")
    if threads <= 0:
        raise ValueError(f"thread count must be positive, got {threads}")
    return 1.0 / (instructions * threads)
