"""One-call metric evaluation of a kernel configuration.

Mirrors the developer workflow of Section 4: compile with ``-cubin``
(resource usage -> B_SM, W_TB), compile with ``-ptx`` (instruction
stream -> Instr, Regions), then evaluate Equations 1 and 2.
"""

from __future__ import annotations

import dataclasses

from typing import Any, Dict

from repro.arch.constants import GEFORCE_8800_GTX, DeviceSpec
from repro.arch.occupancy import Occupancy
from repro.cubin.resources import ResourceUsage, cubin_info
from repro.ir.kernel import Kernel
from repro.metrics.bandwidth import BandwidthEstimate, estimate_bandwidth
from repro.metrics.efficiency import efficiency
from repro.metrics.utilization import utilization
from repro.ptx.analysis import ExecutionProfile, MemoryTraffic, profile_kernel
from repro.ptx.isa import InstrClass


@dataclasses.dataclass(frozen=True)
class MetricReport:
    """Everything Section 4 computes for one configuration."""

    efficiency: float
    utilization: float
    instructions: float
    regions: int
    threads: int
    occupancy: Occupancy
    resources: ResourceUsage
    profile: ExecutionProfile
    bandwidth: BandwidthEstimate

    @property
    def warps_per_block(self) -> int:
        return self.occupancy.warps_per_block

    @property
    def blocks_per_sm(self) -> int:
        return self.occupancy.blocks_per_sm

    def dominates(self, other: "MetricReport") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        if self.efficiency < other.efficiency or self.utilization < other.utilization:
            return False
        return (
            self.efficiency > other.efficiency
            or self.utilization > other.utilization
        )


def report_to_json(report: MetricReport) -> Dict[str, Any]:
    """Serialize a :class:`MetricReport` to JSON-compatible primitives.

    The engine's on-disk checkpoint (``repro.tuning.engine``, format
    version 2) persists static-stage results with this; the round trip
    is bit-exact — ``json`` emits shortest-repr floats, which Python
    parses back to the identical double — so a resumed sweep is
    indistinguishable from a cold one.
    """
    profile = report.profile
    return {
        "efficiency": report.efficiency,
        "utilization": report.utilization,
        "instructions": report.instructions,
        "regions": report.regions,
        "threads": report.threads,
        "occupancy": {
            "blocks_per_sm": report.occupancy.blocks_per_sm,
            "threads_per_block": report.occupancy.threads_per_block,
            "warps_per_block": report.occupancy.warps_per_block,
            "limiting_resource": report.occupancy.limiting_resource,
        },
        "resources": {
            "registers_per_thread": report.resources.registers_per_thread,
            "shared_memory_per_block": report.resources.shared_memory_per_block,
            "threads_per_block": report.resources.threads_per_block,
        },
        "profile": {
            "instructions": profile.instructions,
            "regions": profile.regions,
            "mix": {cls.value: count for cls, count in profile.mix.items()},
            "traffic": {
                "load_bytes": profile.traffic.load_bytes,
                "store_bytes": profile.traffic.store_bytes,
                "uncoalesced_load_bytes": profile.traffic.uncoalesced_load_bytes,
                "uncoalesced_store_bytes": profile.traffic.uncoalesced_store_bytes,
            },
        },
        "bandwidth": {
            "demand_bytes_per_cycle": report.bandwidth.demand_bytes_per_cycle,
            "available_bytes_per_cycle": report.bandwidth.available_bytes_per_cycle,
            "memory_instruction_fraction": report.bandwidth.memory_instruction_fraction,
        },
    }


def report_from_json(data: Dict[str, Any]) -> MetricReport:
    """Inverse of :func:`report_to_json` (bit-exact round trip)."""
    profile = data["profile"]
    return MetricReport(
        efficiency=data["efficiency"],
        utilization=data["utilization"],
        instructions=data["instructions"],
        regions=data["regions"],
        threads=data["threads"],
        occupancy=Occupancy(**data["occupancy"]),
        resources=ResourceUsage(**data["resources"]),
        profile=ExecutionProfile(
            instructions=profile["instructions"],
            regions=profile["regions"],
            mix={
                InstrClass(cls): count
                for cls, count in profile["mix"].items()
            },
            traffic=MemoryTraffic(**profile["traffic"]),
        ),
        bandwidth=BandwidthEstimate(**data["bandwidth"]),
    )


def evaluate_kernel(
    kernel: Kernel,
    device: DeviceSpec = GEFORCE_8800_GTX,
    reschedule_seed: int = None,
) -> MetricReport:
    """Compute the Section 4 metrics for one kernel configuration.

    Raises LaunchError (via the occupancy calculation) for invalid
    executables, mirroring nvcc.  ``reschedule_seed`` engages the
    register allocator's runtime-perturbation hook (Section 3.2's
    "uncontrollable element").
    """
    resources = cubin_info(kernel, reschedule_seed=reschedule_seed)
    occupancy = resources.occupancy(device)
    profile = profile_kernel(kernel)
    bandwidth = estimate_bandwidth(
        profile,
        threads_per_block=kernel.threads_per_block,
        blocks_per_sm=occupancy.blocks_per_sm,
        device=device,
    )
    return MetricReport(
        efficiency=efficiency(profile.instructions, kernel.total_threads),
        utilization=utilization(
            profile.instructions,
            profile.regions,
            occupancy.warps_per_block,
            occupancy.blocks_per_sm,
        ),
        instructions=profile.instructions,
        regions=profile.regions,
        threads=kernel.total_threads,
        occupancy=occupancy,
        resources=resources,
        profile=profile,
        bandwidth=bandwidth,
    )
