"""Equation 2: the utilization metric.

    Utilization = (Instr / Regions) * [ (W_TB - 1)/2 + (B_SM - 1) * W_TB ]

``Instr/Regions`` is the average run of non-blocking instructions a
warp executes before hitting its own blocking instruction; the bracket
counts the independent warps available to hide that wait — half of the
same block's other warps (they may be heading to the same barrier)
plus every warp of the other resident blocks (Section 4).
"""

from __future__ import annotations


def utilization(
    instructions: float,
    regions: int,
    warps_per_block: int,
    blocks_per_sm: int,
) -> float:
    """Utilization of one configuration."""
    if regions <= 0:
        raise ValueError(f"region count must be positive, got {regions}")
    if warps_per_block < 1 or blocks_per_sm < 1:
        raise ValueError("warps per block and blocks per SM must be >= 1")
    other_warps = (warps_per_block - 1) / 2.0 + (blocks_per_sm - 1) * warps_per_block
    return (instructions / regions) * other_warps
