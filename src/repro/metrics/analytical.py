"""A closed-form performance model — the paper's Section 4 future work.

"We are developing a more detailed cost model to achieve more precise
results."  This module is that next step: instead of two partial
metrics it produces one time estimate per configuration, built from
the same static inputs (-ptx profile, -cubin resources) plus the
machine constants.  It sits between the metrics (cheap, partial) and
the discrete-event simulator (expensive, detailed):

    cycles/block = max(issue, SFU, bandwidth) + exposed latency

* issue      — every instruction takes one 4-cycle slot per warp;
* SFU        — transcendentals at 16 cycles/warp-instruction on the SFUs;
* bandwidth  — effective DRAM bytes at the SM's fair share;
* exposure   — per region, the fraction of the blocking latency that
  the other resident warps (Equation 2's bracket) cannot cover.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.cubin.resources import ResourceUsage, cubin_info
from repro.ir.kernel import Kernel
from repro.ptx.analysis import ExecutionProfile, profile_kernel
from repro.ptx.isa import InstrClass
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig


@dataclasses.dataclass(frozen=True)
class AnalyticalEstimate:
    """One configuration's modeled execution time."""

    cycles: float
    seconds: float
    bound: str                       # 'issue' | 'sfu' | 'bandwidth'
    issue_cycles: float
    sfu_cycles: float
    bandwidth_cycles: float
    exposed_latency_cycles: float
    blocks_per_sm_total: int


def analytical_estimate(
    kernel: Kernel,
    config: SimConfig = DEFAULT_SIM_CONFIG,
    resources: Optional[ResourceUsage] = None,
    profile: Optional[ExecutionProfile] = None,
) -> AnalyticalEstimate:
    """Estimate a kernel's time without event-driven simulation.

    Raises LaunchError (via occupancy) for invalid configurations.
    """
    import math

    if resources is None:
        resources = cubin_info(kernel)
    occupancy = resources.occupancy(config.device)
    if profile is None:
        profile = profile_kernel(kernel)

    warps = occupancy.warps_per_block
    issue = profile.instructions * config.issue_cycles_per_instruction * warps

    sfu_count = profile.mix.get(InstrClass.SFU, 0.0)
    sfu = sfu_count * config.sfu_cycles_per_instruction * warps

    traffic = profile.traffic
    uncoalesced = traffic.uncoalesced_load_bytes + traffic.uncoalesced_store_bytes
    effective_bytes = (
        traffic.total_bytes - uncoalesced
        + uncoalesced * config.uncoalesced_traffic_factor
    ) * kernel.threads_per_block
    bandwidth = effective_bytes / config.bandwidth_bytes_per_cycle_per_sm

    # Latency exposure: a warp blocks once per region; the other
    # resident warps can cover `bracket * region_issue` cycles of it.
    # The latency being hidden depends on what delimits the regions:
    # DRAM loads when the kernel has any, otherwise the SFU pipeline
    # (the Section 4 rule for which instructions count as blocking).
    from repro.ptx.analysis import kernel_has_longer_latency_than_sfu

    bracket = (warps - 1) / 2.0 + (occupancy.blocks_per_sm - 1) * warps
    region_issue = (
        profile.instructions_per_region
        * config.issue_cycles_per_instruction
    )
    hidden = bracket * region_issue
    if kernel_has_longer_latency_than_sfu(kernel):
        blocking_latency = float(config.global_latency_cycles)
    else:
        blocking_latency = float(config.sfu_result_latency)
    exposure_per_region = max(0.0, blocking_latency - hidden)
    exposure = exposure_per_region * profile.regions

    components = {
        "issue": issue,
        "sfu": sfu,
        "bandwidth": bandwidth,
    }
    bound = max(components, key=lambda k: components[k])
    per_block = components[bound] + exposure

    blocks_per_sm_total = math.ceil(
        kernel.num_blocks / config.device.num_sms
    )
    cycles = per_block * blocks_per_sm_total
    return AnalyticalEstimate(
        cycles=cycles,
        seconds=config.device.cycles_to_seconds(cycles),
        bound=bound,
        issue_cycles=issue,
        sfu_cycles=sfu,
        bandwidth_cycles=bandwidth,
        exposed_latency_cycles=exposure,
        blocks_per_sm_total=blocks_per_sm_total,
    )
