"""The paper's performance metrics (Section 4, Equations 1-2) and the
future-work extensions it names (coalescing-aware metrics, a more
detailed cost model)."""

from repro.metrics.analytical import AnalyticalEstimate, analytical_estimate
from repro.metrics.bandwidth import BandwidthEstimate, estimate_bandwidth
from repro.metrics.coalescing import (
    AdjustedMetrics,
    adjusted_point,
    coalescing_adjusted,
)
from repro.metrics.efficiency import efficiency
from repro.metrics.model import (
    MetricReport,
    evaluate_kernel,
    report_from_json,
    report_to_json,
)
from repro.metrics.utilization import utilization

__all__ = [
    "AdjustedMetrics",
    "AnalyticalEstimate",
    "BandwidthEstimate",
    "MetricReport",
    "adjusted_point",
    "analytical_estimate",
    "coalescing_adjusted",
    "efficiency",
    "estimate_bandwidth",
    "evaluate_kernel",
    "report_from_json",
    "report_to_json",
    "utilization",
]
