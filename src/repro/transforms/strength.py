"""Strength reduction: multiplies and divides by powers of two become
shifts, remainders become masks.

A small, classical companion to the Section 3.1 instruction-count
optimizations: PTX-era SPs multiplied in one slot but the runtime
still preferred shifts, and — more importantly here — the SAD kernel's
``position / 32`` and ``position % 32`` decompositions are exactly the
patterns this pass collapses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.types import DataType
from repro.ir.values import Immediate, Value
from repro.transforms.rewrite import clone_kernel


def _power_of_two(value: Value) -> Optional[int]:
    if not isinstance(value, Immediate):
        return None
    if value.dtype is DataType.F32 or not isinstance(value.value, int):
        return None
    number = value.value
    if number <= 0 or number & (number - 1):
        return None
    return number.bit_length() - 1


def _reduce(instr: Instruction) -> Instruction:
    if instr.dest is None or not instr.dest.dtype.is_integer:
        return instr
    srcs = instr.srcs
    if instr.opcode is Opcode.MUL:
        for position, other in ((1, 0), (0, 1)):
            shift = _power_of_two(srcs[position])
            if shift is not None:
                return Instruction(
                    Opcode.SHL, dest=instr.dest,
                    srcs=(srcs[other], Immediate(shift, DataType.S32)),
                )
    # DIV/REM by powers of two only round the same way as a shift/mask
    # for non-negative dividends; SAD's position indices qualify, but
    # the pass cannot prove it, so it restricts itself to u32 (whose
    # division is unsigned by construction).
    if instr.dest.dtype is DataType.U32:
        if instr.opcode is Opcode.DIV:
            shift = _power_of_two(srcs[1])
            if shift is not None:
                return Instruction(
                    Opcode.SHR, dest=instr.dest,
                    srcs=(srcs[0], Immediate(shift, DataType.S32)),
                )
        if instr.opcode is Opcode.REM:
            shift = _power_of_two(srcs[1])
            if shift is not None:
                mask = (1 << shift) - 1
                return Instruction(
                    Opcode.AND, dest=instr.dest,
                    srcs=(srcs[0], Immediate(mask, DataType.U32)),
                )
    return instr


def _walk(body: List[Statement]) -> List[Statement]:
    result: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, Instruction):
            result.append(_reduce(stmt))
        elif isinstance(stmt, ForLoop):
            result.append(ForLoop(
                counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                step=stmt.step, body=_walk(stmt.body),
                trip_count=stmt.trip_count, label=stmt.label,
            ))
        elif isinstance(stmt, If):
            result.append(If(
                cond=stmt.cond, then_body=_walk(stmt.then_body),
                else_body=_walk(stmt.else_body),
                taken_fraction=stmt.taken_fraction,
            ))
    return result


def reduce_strength(kernel: Kernel) -> Kernel:
    """Rewrite power-of-two multiplies (and unsigned div/rem) cheaply."""
    return clone_kernel(kernel, body=_walk(kernel.body))
