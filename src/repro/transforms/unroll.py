"""Loop unrolling (paper Section 3.1, third category; Figure 2(c)).

Unrolling reduces dynamic instruction count by eliminating per-trip
loop overhead and — after constant folding — the per-iteration address
calculations: "PTX shows that the group of memory operations only need
the single base address calculation and use their constant offsets to
avoid additional address calculations."

``COMPLETE`` expands the loop entirely, replacing the counter with
immediates so the folding passes can do exactly that.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.ir.instructions import Instruction
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import Immediate, VirtualRegister
from repro.transforms.rewrite import (
    FreshNames,
    Substitution,
    clone_body,
    clone_kernel,
    collect_defs,
    registers_read_before_write,
)

COMPLETE = "complete"
UnrollFactor = Union[int, str]


class UnrollError(ValueError):
    """The requested unrolling cannot be applied to this loop."""


def _check_factor(factor: UnrollFactor) -> None:
    if factor == COMPLETE:
        return
    if not isinstance(factor, int) or factor < 1:
        raise UnrollError(f"unroll factor must be a positive int or {COMPLETE!r}")


def _body_locals(
    loop: ForLoop, kernel_defs: dict
) -> List[VirtualRegister]:
    """Registers that are private to one iteration and safe to rename."""
    body_defs = collect_defs(loop.body)
    carried = registers_read_before_write(loop.body)
    locals_ = []
    for register, count in body_defs.items():
        if register in carried:
            continue
        if kernel_defs.get(register, 0) != count:
            # Also defined outside this body: shared state.
            continue
        locals_.append(register)
    return locals_


def _expand_iteration(
    loop: ForLoop,
    counter_value,
    rename: Substitution,
) -> List[Statement]:
    mapping = dict(rename)
    mapping[loop.counter] = counter_value
    return clone_body(loop.body, mapping)


def _unroll_loop(
    loop: ForLoop,
    factor: UnrollFactor,
    kernel_defs: dict,
    names: FreshNames,
) -> List[Statement]:
    trips = loop.static_trip_count()
    if trips is None:
        raise UnrollError(
            f"loop {loop.label or loop.counter.name} has dynamic bounds; "
            "only statically-counted loops can be unrolled"
        )
    start = int(loop.start.value)
    step = int(loop.step.value)
    locals_ = _body_locals(loop, kernel_defs)

    def fresh_rename() -> Substitution:
        return {reg: names.register(reg) for reg in locals_}

    if factor == COMPLETE or factor >= trips:
        expanded: List[Statement] = []
        for k in range(trips):
            counter_value = Immediate(start + k * step, loop.counter.dtype)
            expanded.extend(_expand_iteration(loop, counter_value, fresh_rename()))
        return expanded

    if factor == 1:
        return [loop]

    main_trips = trips - trips % factor
    statements: List[Statement] = []
    if main_trips:
        new_body: List[Statement] = []
        for k in range(factor):
            if k == 0:
                counter_value = loop.counter
                prefix: List[Statement] = []
            else:
                from repro.ir.instructions import Opcode

                shifted = names.register(loop.counter)
                prefix = [Instruction(
                    Opcode.ADD,
                    dest=shifted,
                    srcs=(loop.counter, Immediate(k * step, loop.counter.dtype)),
                )]
                counter_value = shifted
            new_body.extend(prefix)
            new_body.extend(_expand_iteration(loop, counter_value, fresh_rename()))
        statements.append(ForLoop(
            counter=loop.counter,
            start=loop.start,
            stop=Immediate(start + main_trips * step, loop.counter.dtype),
            step=Immediate(factor * step, loop.counter.dtype),
            body=new_body,
            label=loop.label,
        ))
    for k in range(main_trips, trips):
        counter_value = Immediate(start + k * step, loop.counter.dtype)
        statements.extend(_expand_iteration(loop, counter_value, fresh_rename()))
    return statements


def _rewrite_body(
    body: List[Statement],
    factor: UnrollFactor,
    label: Optional[str],
    kernel_defs: dict,
    names: FreshNames,
) -> List[Statement]:
    result: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, ForLoop):
            # Innermost-ness is judged on the original tree: expanding
            # a child must not make its parent a target.
            was_innermost = _is_innermost(stmt)
            inner = _rewrite_body(stmt.body, factor, label, kernel_defs, names)
            loop = ForLoop(
                counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                step=stmt.step, body=inner, trip_count=stmt.trip_count,
                label=stmt.label,
            )
            matches = (label is None and was_innermost) or (
                label is not None and loop.label == label
            )
            if matches:
                result.extend(_unroll_loop(loop, factor, kernel_defs, names))
            else:
                result.append(loop)
        elif isinstance(stmt, If):
            result.append(If(
                cond=stmt.cond,
                then_body=_rewrite_body(stmt.then_body, factor, label,
                                        kernel_defs, names),
                else_body=_rewrite_body(stmt.else_body, factor, label,
                                        kernel_defs, names),
                taken_fraction=stmt.taken_fraction,
            ))
        else:
            result.append(stmt)
    return result


def _is_innermost(loop: ForLoop) -> bool:
    return not any(isinstance(s, ForLoop) for s in loop.body)


def unroll(
    kernel: Kernel,
    factor: UnrollFactor,
    label: Optional[str] = None,
) -> Kernel:
    """Unroll loops by ``factor`` (or ``COMPLETE``).

    With ``label`` given, only loops carrying that label are unrolled;
    otherwise every innermost statically-counted loop is.  A remainder
    loop is fully expanded when the factor does not divide the trip
    count.
    """
    _check_factor(factor)
    if factor == 1:
        return clone_kernel(kernel)
    kernel_defs = collect_defs(kernel.body)
    names = FreshNames("u")
    body = _rewrite_body(kernel.body, factor, label, kernel_defs, names)
    return clone_kernel(kernel, body=body)
