"""Common subexpression elimination (paper Section 3.1, category three).

Redundant computations distributed across a thread's instruction
stream — typically address arithmetic duplicated by thread-level
tiling — are collapsed onto a single definition.  The transformation
is restricted to single-definition registers, which is what the
KernelBuilder produces for everything except explicit accumulators,
keeping the substitution globally sound.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import Value, VirtualRegister
from repro.transforms.rewrite import (
    clone_kernel,
    collect_defs,
    rewrite_instruction,
    substitute_value,
)

_CSE_OPS = {
    op for op in Opcode
    if op not in (Opcode.LD, Opcode.ST, Opcode.BAR)
}

ExprKey = Tuple


class _CSE:
    def __init__(self, kernel: Kernel) -> None:
        self.defs = collect_defs(kernel.body)
        self.replacements: Dict[VirtualRegister, Value] = {}

    def _single_def(self, register: VirtualRegister) -> bool:
        return self.defs.get(register, 0) == 1

    def _key(self, instr: Instruction) -> ExprKey:
        return (instr.opcode, instr.cmp, instr.srcs)

    def run_body(self, body: List[Statement], avail: Dict[ExprKey, VirtualRegister]) -> List[Statement]:
        result: List[Statement] = []
        for stmt in body:
            if isinstance(stmt, Instruction):
                instr = rewrite_instruction(stmt, self.replacements)
                key = None
                eligible = (
                    instr.opcode in _CSE_OPS
                    and instr.dest is not None
                    and self._single_def(instr.dest)
                    and all(
                        not isinstance(s, VirtualRegister) or self._single_def(s)
                        for s in instr.srcs
                    )
                )
                if eligible:
                    key = self._key(instr)
                    existing = avail.get(key)
                    if existing is not None:
                        self.replacements[instr.dest] = existing
                        continue
                result.append(instr)
                if key is not None:
                    avail[key] = instr.dest
            elif isinstance(stmt, ForLoop):
                result.append(ForLoop(
                    counter=stmt.counter,
                    start=substitute_value(stmt.start, self.replacements),
                    stop=substitute_value(stmt.stop, self.replacements),
                    step=substitute_value(stmt.step, self.replacements),
                    # Nested scope: expressions computed inside a loop
                    # iteration must not satisfy later iterations or
                    # post-loop code (fresh table), but outer
                    # expressions remain available inside.
                    body=self.run_body(stmt.body, dict(avail)),
                    trip_count=stmt.trip_count,
                    label=stmt.label,
                ))
            elif isinstance(stmt, If):
                result.append(If(
                    cond=substitute_value(stmt.cond, self.replacements),
                    then_body=self.run_body(stmt.then_body, dict(avail)),
                    else_body=self.run_body(stmt.else_body, dict(avail)),
                    taken_fraction=stmt.taken_fraction,
                ))
        return result


def eliminate_common_subexpressions(kernel: Kernel) -> Kernel:
    """One CSE sweep over the kernel."""
    return eliminate_common_subexpressions_changed(kernel)[0]


def eliminate_common_subexpressions_changed(
    kernel: Kernel,
) -> Tuple[Kernel, bool]:
    """Like :func:`eliminate_common_subexpressions`, reporting change.

    A sweep changes the kernel iff it recorded at least one replacement
    (every drop records one, and every recorded replacement drops an
    instruction); the structural comparison confirms that cheaply and
    keeps the flag exact even if the invariant ever loosens.
    """
    cse = _CSE(kernel)
    body = cse.run_body(kernel.body, {})
    if not cse.replacements and body == kernel.body:
        return kernel, False
    return clone_kernel(kernel, body=body), True
