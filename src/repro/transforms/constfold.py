"""Constant folding, copy propagation and address folding.

These are the cleanups that make unrolling pay off the way the paper
describes: once the counter is an immediate, per-iteration address
arithmetic evaluates away and the remaining add-immediate feeding a
load folds into the memory operand's constant offset — "the group of
memory operations only need the single base address calculation and
use their constant offsets".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Instruction, MemRef, Opcode
from repro.ir.kernel import Kernel
from repro.ir.semantics import eval_op
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.types import DataType
from repro.ir.values import (
    Immediate,
    Param,
    SpecialRegister,
    Value,
    VirtualRegister,
)
from repro.transforms.rewrite import clone_kernel, collect_defs, substitute_value

_PURE_OPS = {op for op in Opcode if op not in (Opcode.LD, Opcode.ST, Opcode.BAR)}

_IMMUTABLE_SOURCES = (Immediate, SpecialRegister)


def _is_immutable(value: Value) -> bool:
    if isinstance(value, _IMMUTABLE_SOURCES):
        return True
    return isinstance(value, Param) and not value.is_pointer


class _Folder:
    def __init__(self, kernel: Kernel) -> None:
        self.defs = collect_defs(kernel.body)
        # Values known to equal a register (propagation environment).
        self.env: Dict[VirtualRegister, Value] = {}
        # Defining instruction of each single-def register seen so far.
        self.def_instr: Dict[VirtualRegister, Instruction] = {}

    def _single_def(self, register: VirtualRegister) -> bool:
        return self.defs.get(register, 0) == 1

    def _fold_scoped(self, body: List[Statement]) -> List[Statement]:
        """Fold a nested body, then drop facts that do not survive it.

        Register-valued propagation entries and address-chain entries
        recorded inside a loop body describe one iteration's values;
        they must not leak to code after the loop (where the counter
        and loop-carried registers hold different values).  The same
        conservatism is applied to conditional bodies.
        """
        env_before = set(self.env)
        defs_before = set(self.def_instr)
        folded = self.fold_body(body)
        for key in list(self.env):
            if key not in env_before and isinstance(self.env[key], VirtualRegister):
                del self.env[key]
        for key in list(self.def_instr):
            if key not in defs_before:
                del self.def_instr[key]
        return folded

    def fold_body(self, body: List[Statement]) -> List[Statement]:
        result: List[Statement] = []
        for stmt in body:
            if isinstance(stmt, Instruction):
                folded = self._fold_instruction(stmt)
                if folded is not None:
                    result.append(folded)
            elif isinstance(stmt, ForLoop):
                result.append(ForLoop(
                    counter=stmt.counter,
                    start=substitute_value(stmt.start, self.env),
                    stop=substitute_value(stmt.stop, self.env),
                    step=substitute_value(stmt.step, self.env),
                    body=self._fold_scoped(stmt.body),
                    trip_count=stmt.trip_count,
                    label=stmt.label,
                ))
            elif isinstance(stmt, If):
                cond = substitute_value(stmt.cond, self.env)
                if isinstance(cond, Immediate):
                    chosen = stmt.then_body if cond.value else stmt.else_body
                    result.extend(self.fold_body(chosen))
                else:
                    result.append(If(
                        cond=cond,
                        then_body=self._fold_scoped(stmt.then_body),
                        else_body=self._fold_scoped(stmt.else_body),
                        taken_fraction=stmt.taken_fraction,
                    ))
        return result

    def _invalidate_reads_of(self, register: VirtualRegister) -> None:
        """A multi-def register changed: drop address chains reading it."""
        for key in list(self.def_instr):
            if any(v == register for v in self.def_instr[key].reads):
                del self.def_instr[key]

    def _fold_instruction(self, instr: Instruction) -> Optional[Instruction]:
        srcs = tuple(substitute_value(s, self.env) for s in instr.srcs)
        mem = instr.mem
        if mem is not None:
            mem = self._fold_memref(MemRef(
                mem.base, substitute_value(mem.index, self.env), mem.offset
            ))
        instr = Instruction(
            opcode=instr.opcode, dest=instr.dest, srcs=srcs, mem=mem,
            cmp=instr.cmp, coalesced=instr.coalesced,
        )
        if instr.dest is not None and not self._single_def(instr.dest):
            self._invalidate_reads_of(instr.dest)

        if instr.opcode not in _PURE_OPS or instr.dest is None:
            return instr

        # Full evaluation when every operand is an immediate.
        if srcs and all(isinstance(s, Immediate) for s in srcs):
            value = eval_op(
                instr.opcode, instr.dest.dtype,
                tuple(s.value for s in srcs), cmp=instr.cmp,
            )
            return self._bind(instr, Immediate(value, instr.dest.dtype))

        simplified = self._algebraic(instr)
        if isinstance(simplified, Instruction):
            if simplified.dest is not None and self._single_def(simplified.dest):
                self.def_instr[simplified.dest] = simplified
            return simplified
        # The instruction reduced to an existing value.
        return self._bind(instr, simplified)

    def _bind(self, instr: Instruction, value: Value) -> Optional[Instruction]:
        """Record dest == value; drop the instruction when that is safe."""
        if self._single_def(instr.dest) and (
            _is_immutable(value) or (
                isinstance(value, VirtualRegister) and self._single_def(value)
            )
        ):
            self.env[instr.dest] = value
            return None
        return Instruction(Opcode.MOV, dest=instr.dest, srcs=(value,))

    def _algebraic(self, instr: Instruction):
        """Identity simplifications; returns an Instruction or a Value."""
        op = instr.opcode
        srcs = instr.srcs

        def is_imm(value: Value, number) -> bool:
            return isinstance(value, Immediate) and value.value == number

        if op is Opcode.MOV:
            return srcs[0]
        if op is Opcode.ADD:
            if is_imm(srcs[0], 0):
                return srcs[1]
            if is_imm(srcs[1], 0):
                return srcs[0]
        if op is Opcode.SUB and is_imm(srcs[1], 0):
            return srcs[0]
        if op is Opcode.MUL:
            if is_imm(srcs[0], 1):
                return srcs[1]
            if is_imm(srcs[1], 1):
                return srcs[0]
            if (is_imm(srcs[0], 0) or is_imm(srcs[1], 0)) and instr.dest.dtype.is_integer:
                return Immediate(0, instr.dest.dtype)
        if op is Opcode.MAD:
            a, b, c = srcs
            if isinstance(a, Immediate) and isinstance(b, Immediate):
                product = eval_op(Opcode.MUL, instr.dest.dtype, (a.value, b.value))
                if product == 0 and instr.dest.dtype.is_integer:
                    return c
                return Instruction(
                    Opcode.ADD, dest=instr.dest,
                    srcs=(Immediate(product, instr.dest.dtype), c),
                    coalesced=instr.coalesced,
                )
            if is_imm(c, 0) and instr.dest.dtype.is_integer:
                return Instruction(Opcode.MUL, dest=instr.dest, srcs=(a, b))
        if op in (Opcode.SHL, Opcode.SHR) and is_imm(srcs[1], 0):
            return srcs[0]
        return instr

    def _fold_memref(self, mem: MemRef) -> MemRef:
        """Chase add-immediate chains into the constant offset."""
        index = mem.index
        offset = mem.offset
        while True:
            if isinstance(index, Immediate):
                offset += int(index.value)
                index = Immediate(0, DataType.S32)
                break
            if not isinstance(index, VirtualRegister):
                break
            definition = self.def_instr.get(index)
            if definition is None or definition.opcode is not Opcode.ADD:
                break
            a, b = definition.srcs
            if isinstance(b, Immediate):
                offset += int(b.value)
                index = a
            elif isinstance(a, Immediate):
                offset += int(a.value)
                index = b
            else:
                break
        return MemRef(mem.base, index, offset)


def constant_fold(kernel: Kernel) -> Kernel:
    """Run folding + propagation + address folding once over a kernel."""
    return constant_fold_changed(kernel)[0]


def constant_fold_changed(kernel: Kernel) -> Tuple[Kernel, bool]:
    """Like :func:`constant_fold`, reporting whether anything changed.

    The changed flag is exact — statement dataclasses compare
    structurally, so ``folded == original`` holds iff the sweep was an
    identity — and an unchanged kernel is returned as the *same*
    object, letting the fixpoint driver converge without re-emitting
    PTX (see :func:`repro.transforms.pipeline.standard_cleanup`).
    """
    folder = _Folder(kernel)
    body = folder.fold_body(kernel.body)
    if body == kernel.body:
        return kernel, False
    return clone_kernel(kernel, body=body), True
