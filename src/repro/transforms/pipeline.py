"""Standard pass orderings.

``standard_cleanup`` is what the application generators run after the
structural transformations (tiling variants, unrolling, prefetching):
fold constants, share subexpressions, hoist invariants, fold again
(hoisting exposes folds), and sweep dead code — iterated to a fixpoint
so the resulting PTX is stable regardless of how many rewrites ran.

Convergence is *change-driven*: each pass reports whether it changed
the kernel (an exact structural fact — unchanged passes hand back the
same object), and the loop stops on the first round in which no pass
changed anything.  The original detector re-emitted the full PTX text
after every round and compared strings; that emission was pure
overhead on the convergence path and is kept only as
``standard_cleanup_reference``, the differential-testing oracle (see
tests/transforms/test_pipeline.py and the static-pipeline benchmark).
"""

from __future__ import annotations

from repro.ir.kernel import Kernel
from repro.ptx.emit import emit_ptx
from repro.transforms.constfold import constant_fold, constant_fold_changed
from repro.transforms.cse import (
    eliminate_common_subexpressions,
    eliminate_common_subexpressions_changed,
)
from repro.transforms.dce import eliminate_dead_code, eliminate_dead_code_changed
from repro.transforms.licm import (
    hoist_loop_invariants,
    hoist_loop_invariants_changed,
)

_MAX_ROUNDS = 10

#: one cleanup round, in order; every entry returns ``(kernel, changed)``
_ROUND = (
    constant_fold_changed,
    eliminate_common_subexpressions_changed,
    hoist_loop_invariants_changed,
    constant_fold_changed,
    eliminate_dead_code_changed,
)


def standard_cleanup(kernel: Kernel) -> Kernel:
    """Run the scalar optimization pipeline to a change-driven fixpoint.

    Produces the same kernel as ``standard_cleanup_reference`` (pinned
    by a differential test) without emitting a single line of PTX: a
    round in which every pass reports "unchanged" started from a kernel
    the whole round maps to itself, which is exactly the reference
    loop's string-equality condition.
    """
    for _ in range(_MAX_ROUNDS):
        changed = False
        for run_pass in _ROUND:
            kernel, pass_changed = run_pass(kernel)
            changed = changed or pass_changed
        if not changed:
            return kernel
    return kernel


def standard_cleanup_reference(kernel: Kernel) -> Kernel:
    """The original fixpoint driver: run every pass each round and
    detect convergence by comparing emitted PTX strings.  Kept as the
    oracle ``standard_cleanup`` is differentially tested against."""
    fingerprint = emit_ptx(kernel)
    for _ in range(_MAX_ROUNDS):
        kernel = constant_fold(kernel)
        kernel = eliminate_common_subexpressions(kernel)
        kernel = hoist_loop_invariants(kernel)
        kernel = constant_fold(kernel)
        kernel = eliminate_dead_code(kernel)
        new_fingerprint = emit_ptx(kernel)
        if new_fingerprint == fingerprint:
            return kernel
        fingerprint = new_fingerprint
    return kernel
