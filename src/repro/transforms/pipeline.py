"""Standard pass orderings.

``standard_cleanup`` is what the application generators run after the
structural transformations (tiling variants, unrolling, prefetching):
fold constants, share subexpressions, hoist invariants, fold again
(hoisting exposes folds), and sweep dead code — iterated to a fixpoint
so the resulting PTX is stable regardless of how many rewrites ran.
"""

from __future__ import annotations

from repro.ir.kernel import Kernel
from repro.ptx.emit import emit_ptx
from repro.transforms.constfold import constant_fold
from repro.transforms.cse import eliminate_common_subexpressions
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.licm import hoist_loop_invariants

_MAX_ROUNDS = 10


def standard_cleanup(kernel: Kernel) -> Kernel:
    """Run the scalar optimization pipeline to a fixpoint."""
    fingerprint = emit_ptx(kernel)
    for _ in range(_MAX_ROUNDS):
        kernel = constant_fold(kernel)
        kernel = eliminate_common_subexpressions(kernel)
        kernel = hoist_loop_invariants(kernel)
        kernel = constant_fold(kernel)
        kernel = eliminate_dead_code(kernel)
        new_fingerprint = emit_ptx(kernel)
        if new_fingerprint == fingerprint:
            return kernel
        fingerprint = new_fingerprint
    return kernel
