"""Proactive register spilling (paper Section 3.1, resource balancing).

"One example is proactive, explicit register spilling by the
programmer.  By reducing register usage, often a critical resource,
more thread blocks may be assigned to each SM ... despite the added
latency from memory access and additional instructions."

Spilled registers move to per-thread local memory (off-chip, Table 1).
Each definition gains a store, each use gains a reload into a fresh
short-lived temporary, trading instructions and memory latency for
register pressure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cubin.liveness import live_intervals
from repro.ir.instructions import Instruction, MemRef, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.types import DataType
from repro.ir.values import Immediate, LocalArray, VirtualRegister
from repro.transforms.rewrite import FreshNames, clone_kernel


class SpillError(ValueError):
    """No spillable register exists."""


def _loop_bound_registers(body: List[Statement]) -> Set[VirtualRegister]:
    found: Set[VirtualRegister] = set()

    def visit(statements: List[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, ForLoop):
                found.add(stmt.counter)
                for bound in (stmt.start, stmt.stop, stmt.step):
                    if isinstance(bound, VirtualRegister):
                        found.add(bound)
                visit(stmt.body)
            elif isinstance(stmt, If):
                if isinstance(stmt.cond, VirtualRegister):
                    found.add(stmt.cond)
                visit(stmt.then_body)
                visit(stmt.else_body)

    visit(body)
    return found


def choose_spill_candidates(kernel: Kernel, count: int) -> List[VirtualRegister]:
    """Longest-lived registers that can legally move to local memory."""
    excluded = _loop_bound_registers(kernel.body)
    intervals = sorted(
        (iv for iv in live_intervals(kernel)
         if iv.register not in excluded
         and iv.register.dtype is not DataType.PRED),
        key=lambda iv: iv.length,
        reverse=True,
    )
    return [iv.register for iv in intervals[:count]]


def spill_registers(
    kernel: Kernel,
    count: int = 1,
    registers: Optional[List[VirtualRegister]] = None,
) -> Kernel:
    """Spill ``count`` registers (or an explicit list) to local memory."""
    victims = registers if registers is not None else choose_spill_candidates(kernel, count)
    if not victims:
        raise SpillError(f"kernel {kernel.name} has no spillable register")
    slots: Dict[VirtualRegister, int] = {reg: i for i, reg in enumerate(victims)}
    spill_space = LocalArray(
        name="__spill", dtype=victims[0].dtype, length=len(victims)
    )
    if any(reg.dtype is not victims[0].dtype for reg in victims):
        # One array per dtype keeps the model simple; mixed spills are
        # rare enough to just take separate arrays.
        raise SpillError("mixed-type spill sets are not supported; spill per type")
    names = FreshNames("sp")
    victim_set = set(victims)

    def slot_ref(register: VirtualRegister) -> MemRef:
        return MemRef(spill_space, Immediate(slots[register], DataType.S32))

    def rewrite(body: List[Statement]) -> List[Statement]:
        result: List[Statement] = []
        for stmt in body:
            if isinstance(stmt, Instruction):
                reload_map: Dict[VirtualRegister, VirtualRegister] = {}
                for value in stmt.reads:
                    if isinstance(value, VirtualRegister) and value in victim_set:
                        if value not in reload_map:
                            temp = names.register(value)
                            result.append(Instruction(
                                Opcode.LD, dest=temp, mem=slot_ref(value)
                            ))
                            reload_map[value] = temp
                new_srcs = tuple(
                    reload_map.get(v, v) if isinstance(v, VirtualRegister) else v
                    for v in stmt.srcs
                )
                new_mem = stmt.mem
                if new_mem is not None and isinstance(new_mem.index, VirtualRegister):
                    new_mem = MemRef(
                        new_mem.base,
                        reload_map.get(new_mem.index, new_mem.index),
                        new_mem.offset,
                    )
                result.append(Instruction(
                    opcode=stmt.opcode, dest=stmt.dest, srcs=new_srcs,
                    mem=new_mem, cmp=stmt.cmp, coalesced=stmt.coalesced,
                ))
                if stmt.dest is not None and stmt.dest in victim_set:
                    result.append(Instruction(
                        Opcode.ST, srcs=(stmt.dest,), mem=slot_ref(stmt.dest)
                    ))
            elif isinstance(stmt, ForLoop):
                result.append(ForLoop(
                    counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                    step=stmt.step, body=rewrite(stmt.body),
                    trip_count=stmt.trip_count, label=stmt.label,
                ))
            elif isinstance(stmt, If):
                result.append(If(
                    cond=stmt.cond,
                    then_body=rewrite(stmt.then_body),
                    else_body=rewrite(stmt.else_body),
                    taken_fraction=stmt.taken_fraction,
                ))
        return result

    spilled = clone_kernel(kernel, body=rewrite(kernel.body))
    spilled.local_arrays.append(spill_space)
    return spilled
