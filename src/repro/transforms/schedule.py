"""List scheduling: issue loads as early as dependences allow.

Section 3.1: "This optimization category [intra-thread parallelism] is
primarily the jurisdiction of the instruction schedulers of the
compiler and runtime.  The CUDA runtime appears to reschedule
operations to hide intra-thread stalls."  This pass is that scheduler,
made explicit and deterministic: within every straight-line run of
instructions it performs a greedy topological reorder that prefers
long-latency loads, widening the distance between a load and its
first use so the scoreboard stall shrinks.

Dependence rules (conservative):

* register RAW / WAR / WAW;
* a load depends on every earlier store to the same array, a store on
  every earlier access to the same array;
* loops, conditionals and barriers fence scheduling — only code
  between them moves.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import VirtualRegister
from repro.transforms.rewrite import clone_kernel


def _depends(later: Instruction, earlier: Instruction) -> bool:
    """Must ``later`` stay after ``earlier``?"""
    # Register dependences.
    earlier_writes = {earlier.dest} if earlier.dest is not None else set()
    later_reads = {
        v for v in later.reads if isinstance(v, VirtualRegister)
    }
    if earlier_writes & later_reads:
        return True                                    # RAW
    if later.dest is not None:
        earlier_reads = {
            v for v in earlier.reads if isinstance(v, VirtualRegister)
        }
        if later.dest in earlier_reads:
            return True                                # WAR
        if later.dest in earlier_writes:
            return True                                # WAW
    # Memory dependences, per base array.
    if later.mem is not None and earlier.mem is not None:
        same_base = later.mem.base == earlier.mem.base
        if same_base and (
            later.opcode is Opcode.ST or earlier.opcode is Opcode.ST
        ):
            return True
    return False


def _schedule_run(run: List[Instruction]) -> List[Instruction]:
    """Greedy list scheduling of one straight-line instruction run."""
    if len(run) <= 2:
        return run
    remaining = list(range(len(run)))
    # predecessors[i] = indices that must precede i.
    predecessors: Dict[int, Set[int]] = {i: set() for i in remaining}
    for i in range(len(run)):
        for j in range(i):
            if _depends(run[i], run[j]):
                predecessors[i].add(j)

    emitted: List[int] = []
    done: Set[int] = set()
    while len(emitted) < len(run):
        ready = [
            i for i in remaining
            if i not in done and predecessors[i] <= done
        ]
        # Prefer long-latency loads, then original program order.
        loads = [i for i in ready if run[i].is_long_latency]
        choice = min(loads) if loads else min(ready)
        emitted.append(choice)
        done.add(choice)
    return [run[i] for i in emitted]


def _schedule_body(body: List[Statement]) -> List[Statement]:
    result: List[Statement] = []
    run: List[Instruction] = []

    def flush() -> None:
        nonlocal run
        if run:
            result.extend(_schedule_run(run))
            run = []

    for stmt in body:
        if isinstance(stmt, Instruction):
            if stmt.opcode is Opcode.BAR:
                flush()
                result.append(stmt)
            else:
                run.append(stmt)
        elif isinstance(stmt, ForLoop):
            flush()
            result.append(ForLoop(
                counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                step=stmt.step, body=_schedule_body(stmt.body),
                trip_count=stmt.trip_count, label=stmt.label,
            ))
        elif isinstance(stmt, If):
            flush()
            result.append(If(
                cond=stmt.cond,
                then_body=_schedule_body(stmt.then_body),
                else_body=_schedule_body(stmt.else_body),
                taken_fraction=stmt.taken_fraction,
            ))
    flush()
    return result


def schedule_loads_early(kernel: Kernel) -> Kernel:
    """Hoist loads to their earliest dependence-legal position."""
    return clone_kernel(kernel, body=_schedule_body(kernel.body))
