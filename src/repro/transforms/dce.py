"""Dead code elimination.

Removes pure instructions whose results are never read, loops whose
bodies emptied out, and conditionals with no surviving arms.  Loads
count as pure: our memory model has no faulting semantics, so an
unread load is dead weight (this is exactly what makes dropped
redundant loads an instruction-count optimization in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import VirtualRegister
from repro.transforms.rewrite import clone_kernel, collect_uses

_SIDE_EFFECTS = (Opcode.ST, Opcode.BAR)


def _sweep(body: List[Statement], uses: Dict[VirtualRegister, int]) -> List[Statement]:
    result: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, Instruction):
            if stmt.opcode in _SIDE_EFFECTS:
                result.append(stmt)
            elif stmt.dest is not None and uses.get(stmt.dest, 0) > 0:
                result.append(stmt)
        elif isinstance(stmt, ForLoop):
            inner = _sweep(stmt.body, uses)
            if inner or uses.get(stmt.counter, 0) > 0:
                result.append(ForLoop(
                    counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                    step=stmt.step, body=inner, trip_count=stmt.trip_count,
                    label=stmt.label,
                ))
        elif isinstance(stmt, If):
            then_body = _sweep(stmt.then_body, uses)
            else_body = _sweep(stmt.else_body, uses)
            if then_body or else_body:
                result.append(If(
                    cond=stmt.cond, then_body=then_body, else_body=else_body,
                    taken_fraction=stmt.taken_fraction,
                ))
    return result


def eliminate_dead_code(kernel: Kernel) -> Kernel:
    """Iterate use-count sweeps to a fixpoint."""
    return eliminate_dead_code_changed(kernel)[0]


def eliminate_dead_code_changed(kernel: Kernel) -> Tuple[Kernel, bool]:
    """Like :func:`eliminate_dead_code`, reporting whether anything died.

    A sweep only ever removes statements, so the statement count is an
    exact change detector — it already drives the internal fixpoint;
    the flag is simply whether the count moved at all.
    """
    original = kernel.body
    body = original
    while True:
        swept = _sweep(body, collect_uses(body))
        if _count(swept) == _count(body):
            if _count(swept) == _count(original):
                return kernel, False
            return clone_kernel(kernel, body=swept), True
        body = swept


def _count(body: List[Statement]) -> int:
    total = 0
    for stmt in body:
        total += 1
        if isinstance(stmt, ForLoop):
            total += _count(stmt.body)
        elif isinstance(stmt, If):
            total += _count(stmt.then_body) + _count(stmt.else_body)
    return total
