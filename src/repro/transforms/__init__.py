"""IR-to-IR optimization passes (paper Section 3.1)."""

from repro.transforms.constfold import constant_fold
from repro.transforms.cse import eliminate_common_subexpressions
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.licm import hoist_loop_invariants
from repro.transforms.pipeline import standard_cleanup
from repro.transforms.prefetch import PrefetchError, prefetch_global_loads
from repro.transforms.schedule import schedule_loads_early
from repro.transforms.strength import reduce_strength
from repro.transforms.rewrite import (
    FreshNames,
    Pass,
    apply_passes,
    clone_body,
    clone_kernel,
    collect_defs,
    collect_uses,
    rewrite_instruction,
    substitute_value,
)
from repro.transforms.spill import SpillError, choose_spill_candidates, spill_registers
from repro.transforms.unroll import COMPLETE, UnrollError, UnrollFactor, unroll

__all__ = [
    "COMPLETE",
    "FreshNames",
    "Pass",
    "PrefetchError",
    "SpillError",
    "UnrollError",
    "UnrollFactor",
    "apply_passes",
    "choose_spill_candidates",
    "clone_body",
    "clone_kernel",
    "collect_defs",
    "collect_uses",
    "constant_fold",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "hoist_loop_invariants",
    "prefetch_global_loads",
    "reduce_strength",
    "schedule_loads_early",
    "rewrite_instruction",
    "spill_registers",
    "standard_cleanup",
    "substitute_value",
    "unroll",
]
