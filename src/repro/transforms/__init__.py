"""IR-to-IR optimization passes (paper Section 3.1)."""

from repro.transforms.constfold import constant_fold, constant_fold_changed
from repro.transforms.cse import (
    eliminate_common_subexpressions,
    eliminate_common_subexpressions_changed,
)
from repro.transforms.dce import eliminate_dead_code, eliminate_dead_code_changed
from repro.transforms.licm import (
    hoist_loop_invariants,
    hoist_loop_invariants_changed,
)
from repro.transforms.pipeline import standard_cleanup, standard_cleanup_reference
from repro.transforms.prefetch import PrefetchError, prefetch_global_loads
from repro.transforms.schedule import schedule_loads_early
from repro.transforms.strength import reduce_strength
from repro.transforms.rewrite import (
    FreshNames,
    Pass,
    apply_passes,
    clone_body,
    clone_kernel,
    collect_defs,
    collect_uses,
    rewrite_instruction,
    substitute_value,
)
from repro.transforms.spill import SpillError, choose_spill_candidates, spill_registers
from repro.transforms.unroll import COMPLETE, UnrollError, UnrollFactor, unroll

__all__ = [
    "COMPLETE",
    "FreshNames",
    "Pass",
    "PrefetchError",
    "SpillError",
    "UnrollError",
    "UnrollFactor",
    "apply_passes",
    "choose_spill_candidates",
    "clone_body",
    "clone_kernel",
    "collect_defs",
    "collect_uses",
    "constant_fold",
    "constant_fold_changed",
    "eliminate_common_subexpressions",
    "eliminate_common_subexpressions_changed",
    "eliminate_dead_code",
    "eliminate_dead_code_changed",
    "hoist_loop_invariants",
    "hoist_loop_invariants_changed",
    "prefetch_global_loads",
    "reduce_strength",
    "schedule_loads_early",
    "rewrite_instruction",
    "spill_registers",
    "standard_cleanup",
    "standard_cleanup_reference",
    "substitute_value",
    "unroll",
]
