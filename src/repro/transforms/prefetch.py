"""Global-load prefetching (paper Section 3.1, category four; Figure 2(d)).

Transforms a tile-streaming loop

    for (...) {
        a = A[indexA];            // long-latency load
        As[...] = a;              // handoff to shared memory
        indexA += 16;             // induction update
        __syncthreads();
        ...compute...
        __syncthreads();
    }

into the paper's prefetched form: the load is issued one iteration
ahead, into a register that stays live across the whole loop —
"initiating long-latency global loads into an additional local
variable (register) long before the variable is used":

    a = A[indexA];                // prologue load
    for (...) {
        As[...] = a;
        indexA += 16;
        __syncthreads();
        a = A[indexA];            // next iteration's data
        ...compute...
        __syncthreads();
    }

The final iteration's trailing load over-fetches one tile past the
end, exactly as the paper's hand-written kernel does; the functional
interpreter clamps global reads so this is harmless (the fetched value
is never consumed).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import VirtualRegister
from repro.transforms.rewrite import clone_body, clone_kernel, collect_defs, collect_uses


class PrefetchError(ValueError):
    """The loop does not match the prefetchable tile-streaming shape."""


def _first_barrier_index(body: List[Statement]) -> Optional[int]:
    for position, stmt in enumerate(body):
        if isinstance(stmt, Instruction) and stmt.opcode is Opcode.BAR:
            return position
    return None


def _candidate_loads(
    loop: ForLoop,
    barrier_at: int,
    outside_defs: Set[VirtualRegister],
    kernel_uses: dict,
) -> List[int]:
    """Positions of loads that can be issued one iteration early."""
    body = loop.body
    loop_defs = set(collect_defs(body)) | {loop.counter}
    candidates = []
    for position in range(barrier_at):
        stmt = body[position]
        if not isinstance(stmt, Instruction) or stmt.opcode is not Opcode.LD:
            continue
        if not stmt.is_global_access:
            continue
        index_regs = [
            v for v in (stmt.mem.index,) if isinstance(v, VirtualRegister)
        ]
        # The address must be computable at the loop preheader and be
        # updated before the barrier (so the early load sees the next
        # iteration's address).
        if any(reg not in outside_defs and reg not in loop_defs for reg in index_regs):
            continue
        if any(
            reg in loop_defs and not _written_before(body, barrier_at, reg)
            and reg is not loop.counter
            for reg in index_regs
        ):
            continue
        if stmt.mem.index is loop.counter or loop.counter in index_regs:
            # Counter-addressed loads would need a rotated counter.
            continue
        # Every use of the destination must precede the barrier, and
        # the value must not escape the loop.
        dest = stmt.dest
        uses_in_body = _use_positions(body, dest)
        if any(pos > barrier_at for pos in uses_in_body):
            continue
        if kernel_uses.get(dest, 0) != len(uses_in_body):
            continue
        candidates.append(position)
    return candidates


def _written_before(body: List[Statement], limit: int, register: VirtualRegister) -> bool:
    for stmt in body[:limit]:
        if isinstance(stmt, Instruction) and stmt.dest == register:
            return True
    return False


def _use_positions(body: List[Statement], register: VirtualRegister) -> List[int]:
    positions = []
    for position, stmt in enumerate(body):
        if isinstance(stmt, Instruction):
            if any(v == register for v in stmt.reads):
                positions.append(position)
        elif isinstance(stmt, (ForLoop, If)):
            if register in collect_uses([stmt]):
                positions.append(position)
    return positions


def prefetch_global_loads(kernel: Kernel, label: Optional[str] = None) -> Kernel:
    """Apply Figure 2(d) prefetching to matching loops.

    With ``label``, only the labelled loop is transformed and a
    PrefetchError is raised if it does not match; otherwise every
    matching loop is transformed and non-matching loops are left alone.
    """
    kernel_defs = collect_defs(kernel.body)
    kernel_uses = collect_uses(kernel.body)
    transformed = [0]

    def rewrite(body: List[Statement], outside_defs: Set[VirtualRegister]) -> List[Statement]:
        result: List[Statement] = []
        for stmt in body:
            if isinstance(stmt, ForLoop):
                local_outside = outside_defs | {stmt.counter}
                new_body = rewrite(stmt.body, local_outside | set(collect_defs(stmt.body)))
                loop = ForLoop(
                    counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                    step=stmt.step, body=new_body, trip_count=stmt.trip_count,
                    label=stmt.label,
                )
                wants = label is None or loop.label == label
                if wants:
                    prologue = _try_prefetch(loop, outside_defs, kernel_uses)
                    if prologue is not None:
                        result.extend(prologue)
                        transformed[0] += 1
                    elif label is not None:
                        raise PrefetchError(
                            f"loop {label!r} does not match the prefetch pattern"
                        )
                    else:
                        result.append(loop)
                    continue
                result.append(loop)
            elif isinstance(stmt, If):
                result.append(If(
                    cond=stmt.cond,
                    then_body=rewrite(stmt.then_body, outside_defs),
                    else_body=rewrite(stmt.else_body, outside_defs),
                    taken_fraction=stmt.taken_fraction,
                ))
            else:
                result.append(stmt)
                if isinstance(stmt, Instruction) and stmt.dest is not None:
                    outside_defs = outside_defs | {stmt.dest}
        return result

    def _try_prefetch(
        loop: ForLoop,
        outside_defs: Set[VirtualRegister],
        uses: dict,
    ) -> Optional[List[Statement]]:
        barrier_at = _first_barrier_index(loop.body)
        if barrier_at is None:
            return None
        candidates = _candidate_loads(loop, barrier_at, outside_defs, uses)
        if not candidates:
            return None
        prologue: List[Statement] = []
        new_body: List[Statement] = []
        early_loads: List[Instruction] = []
        for position, stmt in enumerate(loop.body):
            if position in candidates:
                prologue.extend(clone_body([stmt]))
                early_loads.append(stmt)
                continue
            new_body.append(stmt)
            if (
                isinstance(stmt, Instruction)
                and stmt.opcode is Opcode.BAR
                and early_loads
            ):
                new_body.extend(clone_body(early_loads))
                early_loads = []
        prologue.append(ForLoop(
            counter=loop.counter, start=loop.start, stop=loop.stop,
            step=loop.step, body=new_body, trip_count=loop.trip_count,
            label=loop.label,
        ))
        return prologue

    body = rewrite(kernel.body, _toplevel_defs(kernel_defs, kernel))
    if label is not None and transformed[0] == 0:
        raise PrefetchError(f"no loop labelled {label!r} found")
    return clone_kernel(kernel, body=body)


def _toplevel_defs(kernel_defs: dict, kernel: Kernel) -> Set[VirtualRegister]:
    # Registers defined anywhere count as "outside" candidates for the
    # address check; the per-loop logic re-checks update positions.
    return set(kernel_defs)
