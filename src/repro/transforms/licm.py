"""Loop-invariant code motion (paper Section 3.1, category three).

Pure instructions whose operands do not change across a loop's
iterations are hoisted in front of the loop.  Speculative hoisting out
of conditionals inside the loop is allowed because all hoistable
operations are side-effect free in our model.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.ir.instructions import Instruction, Opcode
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import VirtualRegister
from repro.transforms.rewrite import clone_kernel, collect_defs

_HOISTABLE = {
    op for op in Opcode if op not in (Opcode.LD, Opcode.ST, Opcode.BAR)
}


def _defs_in_subtree(body: List[Statement]) -> Set[VirtualRegister]:
    return set(collect_defs(body))


def _hoist_from(
    body: List[Statement],
    varying: Set[VirtualRegister],
    hoisted: List[Instruction],
    kernel_defs: dict,
) -> List[Statement]:
    """Remove invariant instructions from ``body``, appending to hoisted."""
    remaining: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, Instruction):
            movable = (
                stmt.opcode in _HOISTABLE
                and stmt.dest is not None
                and kernel_defs.get(stmt.dest, 0) == 1
                and all(
                    not isinstance(v, VirtualRegister) or v not in varying
                    for v in stmt.reads
                )
            )
            if movable:
                hoisted.append(stmt)
                varying.discard(stmt.dest)
            else:
                remaining.append(stmt)
        elif isinstance(stmt, If):
            then_body = _hoist_from(stmt.then_body, varying, hoisted, kernel_defs)
            else_body = _hoist_from(stmt.else_body, varying, hoisted, kernel_defs)
            remaining.append(If(
                cond=stmt.cond, then_body=then_body, else_body=else_body,
                taken_fraction=stmt.taken_fraction,
            ))
        else:
            remaining.append(stmt)
    return remaining


def _process_body(body: List[Statement], kernel_defs: dict) -> List[Statement]:
    result: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, ForLoop):
            inner = _process_body(stmt.body, kernel_defs)
            loop = ForLoop(
                counter=stmt.counter, start=stmt.start, stop=stmt.stop,
                step=stmt.step, body=inner, trip_count=stmt.trip_count,
                label=stmt.label,
            )
            # Fixpoint: hoisting one instruction can make another
            # invariant (chains of address arithmetic).
            while True:
                varying = _defs_in_subtree(loop.body) | {loop.counter}
                hoisted: List[Instruction] = []
                new_body = _hoist_from(loop.body, varying, hoisted, kernel_defs)
                if not hoisted:
                    break
                result.extend(hoisted)
                loop = ForLoop(
                    counter=loop.counter, start=loop.start, stop=loop.stop,
                    step=loop.step, body=new_body, trip_count=loop.trip_count,
                    label=loop.label,
                )
            result.append(loop)
        elif isinstance(stmt, If):
            result.append(If(
                cond=stmt.cond,
                then_body=_process_body(stmt.then_body, kernel_defs),
                else_body=_process_body(stmt.else_body, kernel_defs),
                taken_fraction=stmt.taken_fraction,
            ))
        else:
            result.append(stmt)
    return result


def hoist_loop_invariants(kernel: Kernel) -> Kernel:
    """Hoist invariant pure instructions out of every loop."""
    return hoist_loop_invariants_changed(kernel)[0]


def hoist_loop_invariants_changed(kernel: Kernel) -> Tuple[Kernel, bool]:
    """Like :func:`hoist_loop_invariants`, reporting whether any
    instruction moved (structural comparison — exact, and an unchanged
    kernel is returned as the same object)."""
    kernel_defs = collect_defs(kernel.body)
    body = _process_body(kernel.body, kernel_defs)
    if body == kernel.body:
        return kernel, False
    return clone_kernel(kernel, body=body), True
