"""Shared rewriting machinery for IR-to-IR passes.

Provides deep cloning of statement trees, value substitution, and
def/use bookkeeping.  All passes return fresh kernels; input IR is
never mutated, so configurations can share a baseline kernel safely.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Set

from repro.ir.instructions import Instruction, MemRef
from repro.ir.kernel import Kernel
from repro.ir.statements import ForLoop, If, Statement
from repro.ir.values import Value, VirtualRegister

Substitution = Dict[VirtualRegister, Value]


def substitute_value(value: Value, mapping: Substitution) -> Value:
    if isinstance(value, VirtualRegister):
        return mapping.get(value, value)
    return value


def rewrite_instruction(instr: Instruction, mapping: Substitution) -> Instruction:
    """Clone one instruction, applying a register substitution.

    Destination registers are substituted too (unroll renames them);
    a destination mapped to a non-register is a programming error.
    """
    dest = instr.dest
    if dest is not None and dest in mapping:
        replacement = mapping[dest]
        if not isinstance(replacement, VirtualRegister):
            raise TypeError(f"cannot write to {replacement}")
        dest = replacement
    mem = instr.mem
    if mem is not None:
        mem = MemRef(mem.base, substitute_value(mem.index, mapping), mem.offset)
    return Instruction(
        opcode=instr.opcode,
        dest=dest,
        srcs=tuple(substitute_value(s, mapping) for s in instr.srcs),
        mem=mem,
        cmp=instr.cmp,
        coalesced=instr.coalesced,
    )


def clone_body(body: List[Statement], mapping: Substitution = None) -> List[Statement]:
    """Deep-copy a statement tree with an optional register substitution."""
    mapping = mapping or {}
    result: List[Statement] = []
    for stmt in body:
        if isinstance(stmt, Instruction):
            result.append(rewrite_instruction(stmt, mapping))
        elif isinstance(stmt, ForLoop):
            counter = substitute_value(stmt.counter, mapping)
            if not isinstance(counter, VirtualRegister):
                raise TypeError("loop counter must remain a register")
            result.append(ForLoop(
                counter=counter,
                start=substitute_value(stmt.start, mapping),
                stop=substitute_value(stmt.stop, mapping),
                step=substitute_value(stmt.step, mapping),
                body=clone_body(stmt.body, mapping),
                trip_count=stmt.trip_count,
                label=stmt.label,
            ))
        elif isinstance(stmt, If):
            result.append(If(
                cond=substitute_value(stmt.cond, mapping),
                then_body=clone_body(stmt.then_body, mapping),
                else_body=clone_body(stmt.else_body, mapping),
                taken_fraction=stmt.taken_fraction,
            ))
        else:
            raise TypeError(f"unknown statement {stmt!r}")
    return result


def clone_kernel(kernel: Kernel, body: List[Statement] = None) -> Kernel:
    """Copy a kernel, optionally replacing its body."""
    return Kernel(
        name=kernel.name,
        params=list(kernel.params),
        block_dim=kernel.block_dim,
        grid_dim=kernel.grid_dim,
        shared_arrays=list(kernel.shared_arrays),
        local_arrays=list(kernel.local_arrays),
        body=body if body is not None else clone_body(kernel.body),
    )


def collect_defs(body: List[Statement]) -> Dict[VirtualRegister, int]:
    """Count definitions of each register in a statement tree."""
    counts: Dict[VirtualRegister, int] = {}

    def visit(statements: List[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, Instruction):
                if stmt.dest is not None:
                    counts[stmt.dest] = counts.get(stmt.dest, 0) + 1
            elif isinstance(stmt, ForLoop):
                counts[stmt.counter] = counts.get(stmt.counter, 0) + 1
                visit(stmt.body)
            elif isinstance(stmt, If):
                visit(stmt.then_body)
                visit(stmt.else_body)

    visit(body)
    return counts


def collect_uses(body: List[Statement]) -> Dict[VirtualRegister, int]:
    """Count reads of each register in a statement tree."""
    counts: Dict[VirtualRegister, int] = {}

    def touch(value: Value) -> None:
        if isinstance(value, VirtualRegister):
            counts[value] = counts.get(value, 0) + 1

    def visit(statements: List[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, Instruction):
                for value in stmt.reads:
                    touch(value)
            elif isinstance(stmt, ForLoop):
                touch(stmt.start)
                touch(stmt.stop)
                touch(stmt.step)
                visit(stmt.body)
            elif isinstance(stmt, If):
                touch(stmt.cond)
                visit(stmt.then_body)
                visit(stmt.else_body)

    visit(body)
    return counts


def registers_read_before_write(body: List[Statement]) -> Set[VirtualRegister]:
    """Registers whose first access in a body is a read.

    Used by unrolling to recognize loop-carried state (accumulators)
    that must keep its name across iteration copies.
    """
    seen_write: Set[VirtualRegister] = set()
    result: Set[VirtualRegister] = set()

    def visit(statements: List[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, Instruction):
                for value in stmt.reads:
                    if isinstance(value, VirtualRegister) and value not in seen_write:
                        result.add(value)
                if stmt.dest is not None:
                    seen_write.add(stmt.dest)
            elif isinstance(stmt, ForLoop):
                for bound in (stmt.start, stmt.stop, stmt.step):
                    if isinstance(bound, VirtualRegister) and bound not in seen_write:
                        result.add(bound)
                seen_write.add(stmt.counter)
                visit(stmt.body)
            elif isinstance(stmt, If):
                if isinstance(stmt.cond, VirtualRegister) and stmt.cond not in seen_write:
                    result.add(stmt.cond)
                # Conservatively treat both sides as executed.
                visit(stmt.then_body)
                visit(stmt.else_body)

    visit(body)
    return result


class FreshNames:
    """Generates fresh register names that cannot collide.

    Pass-created registers carry a pass-specific prefix plus a global
    counter, so repeated pass applications stay collision-free.
    """

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = 0

    def register(self, like: VirtualRegister) -> VirtualRegister:
        self._counter += 1
        return VirtualRegister(
            f"{like.name}.{self._prefix}{self._counter}", like.dtype
        )


@dataclasses.dataclass(frozen=True)
class Pass:
    """A named kernel-to-kernel transformation."""

    name: str
    run: Callable[[Kernel], Kernel]


def apply_passes(kernel: Kernel, passes: List[Pass]) -> Kernel:
    """Run a pass list left to right."""
    for pass_ in passes:
        kernel = pass_.run(kernel)
    return kernel
